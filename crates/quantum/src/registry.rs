use std::collections::BTreeSet;
use std::fmt;

use rand::Rng;

/// Identifier of a qubit inside an [`EntanglementRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QubitId(usize);

impl QubitId {
    /// Raw index of this qubit.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for QubitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// Identifier of a live GHZ group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroupId(usize);

impl GroupId {
    /// Raw index of this group.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Errors returned by registry operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegistryError {
    /// The qubit id does not exist in this registry.
    UnknownQubit(QubitId),
    /// Expected a free qubit but it is entangled or consumed.
    NotFree(QubitId),
    /// Expected an entangled qubit but it is free or consumed.
    NotEntangled(QubitId),
    /// A fusion needs at least one measured qubit.
    EmptyFusion,
    /// The same qubit was listed twice in one fusion.
    DuplicateQubit(QubitId),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownQubit(q) => write!(f, "unknown qubit {q}"),
            RegistryError::NotFree(q) => write!(f, "qubit {q} is not free"),
            RegistryError::NotEntangled(q) => write!(f, "qubit {q} is not entangled"),
            RegistryError::EmptyFusion => write!(f, "fusion requires at least one qubit"),
            RegistryError::DuplicateQubit(q) => write!(f, "qubit {q} listed twice"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// Result of a successful fusion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusionOutcome {
    /// The surviving GHZ group, or `None` when fewer than two qubits remain
    /// (the leftover qubit, if any, returns to the free pool).
    pub group: Option<GroupId>,
    /// Number of qubits jointly measured (the fusion arity `n`).
    pub arity: usize,
    /// Number of qubits in the surviving group (0 when `group` is `None`).
    pub survivors: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum QubitState {
    Free,
    Entangled(GroupId),
    Consumed,
}

/// Tracks which qubits form which GHZ groups (paper §II-B).
///
/// The registry is the abstract counterpart of the stabilizer-circuit layer:
/// an `n`-fusion jointly measures `n` qubits drawn from one or more GHZ
/// groups and — on success — leaves all *remaining* qubits of the involved
/// groups in one larger GHZ state. A failed (probabilistic) fusion destroys
/// the entanglement of every involved group. A 1-fusion is a single-qubit
/// Pauli measurement that removes one qubit from its group, turning an
/// n-GHZ state into an (n-1)-GHZ state.
///
/// # Examples
///
/// ```
/// use fusion_quantum::EntanglementRegistry;
///
/// let mut reg = EntanglementRegistry::new();
/// let q: Vec<_> = (0..6).map(|_| reg.alloc()).collect();
/// reg.create_pair(q[0], q[1])?;
/// reg.create_pair(q[2], q[3])?;
/// reg.create_pair(q[4], q[5])?;
/// // 3-fusion inside a switch holding q1, q2, q4:
/// let out = reg.fuse(&[q[1], q[2], q[4]])?;
/// assert_eq!(out.survivors, 3); // q0, q3, q5 now share a 3-GHZ state
/// assert!(reg.are_entangled(q[0], q[5]));
/// # Ok::<(), fusion_quantum::RegistryError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct EntanglementRegistry {
    states: Vec<QubitState>,
    groups: Vec<Option<BTreeSet<QubitId>>>,
}

impl EntanglementRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty registry with room for `qubits` qubits (and a
    /// matching number of group slots) before reallocating.
    #[must_use]
    pub fn with_capacity(qubits: usize) -> Self {
        EntanglementRegistry {
            states: Vec::with_capacity(qubits),
            groups: Vec::with_capacity(qubits),
        }
    }

    /// Clears every qubit and group, retaining the allocated buffers, so
    /// one registry can be refilled round after round without touching the
    /// allocator (the sampler pattern used by the per-round simulators).
    /// Qubit and group ids issued before the reset are meaningless
    /// afterwards.
    pub fn reset(&mut self) {
        self.states.clear();
        self.groups.clear();
    }

    /// Allocates a fresh free qubit.
    pub fn alloc(&mut self) -> QubitId {
        let id = QubitId(self.states.len());
        self.states.push(QubitState::Free);
        id
    }

    /// Allocates `n` fresh free qubits.
    pub fn alloc_n(&mut self, n: usize) -> Vec<QubitId> {
        (0..n).map(|_| self.alloc()).collect()
    }

    /// Total number of qubits ever allocated.
    #[must_use]
    pub fn qubit_count(&self) -> usize {
        self.states.len()
    }

    /// Number of live GHZ groups.
    #[must_use]
    pub fn group_count(&self) -> usize {
        self.groups.iter().filter(|g| g.is_some()).count()
    }

    fn state(&self, q: QubitId) -> Result<QubitState, RegistryError> {
        self.states
            .get(q.index())
            .copied()
            .ok_or(RegistryError::UnknownQubit(q))
    }

    /// `true` if `q` is free (allocated, not entangled, not consumed).
    #[must_use]
    pub fn is_free(&self, q: QubitId) -> bool {
        matches!(self.state(q), Ok(QubitState::Free))
    }

    /// The group containing `q`, if it is entangled.
    #[must_use]
    pub fn group_of(&self, q: QubitId) -> Option<GroupId> {
        match self.state(q) {
            Ok(QubitState::Entangled(g)) => Some(g),
            _ => None,
        }
    }

    /// Members of a live group in ascending qubit order.
    #[must_use]
    pub fn group_members(&self, g: GroupId) -> Option<Vec<QubitId>> {
        self.groups
            .get(g.index())
            .and_then(|slot| slot.as_ref())
            .map(|set| set.iter().copied().collect())
    }

    /// The GHZ arity (member count) of a live group.
    #[must_use]
    pub fn group_size(&self, g: GroupId) -> Option<usize> {
        self.groups
            .get(g.index())
            .and_then(|slot| slot.as_ref())
            .map(BTreeSet::len)
    }

    /// `true` if `a` and `b` currently share a GHZ state.
    #[must_use]
    pub fn are_entangled(&self, a: QubitId, b: QubitId) -> bool {
        match (self.group_of(a), self.group_of(b)) {
            (Some(ga), Some(gb)) => ga == gb,
            _ => false,
        }
    }

    /// Entangles two free qubits into a Bell pair (a 2-GHZ group), the
    /// result of a successful link-level entanglement attempt (§III-A).
    ///
    /// # Errors
    ///
    /// Returns an error if either qubit is unknown, already entangled,
    /// consumed, or if `a == b`.
    pub fn create_pair(&mut self, a: QubitId, b: QubitId) -> Result<GroupId, RegistryError> {
        if a == b {
            return Err(RegistryError::DuplicateQubit(a));
        }
        for q in [a, b] {
            match self.state(q)? {
                QubitState::Free => {}
                _ => return Err(RegistryError::NotFree(q)),
            }
        }
        let gid = GroupId(self.groups.len());
        self.groups.push(Some(BTreeSet::from([a, b])));
        self.states[a.index()] = QubitState::Entangled(gid);
        self.states[b.index()] = QubitState::Entangled(gid);
        Ok(gid)
    }

    fn involved_groups(&self, measured: &[QubitId]) -> Result<Vec<GroupId>, RegistryError> {
        if measured.is_empty() {
            return Err(RegistryError::EmptyFusion);
        }
        let mut seen = BTreeSet::new();
        for &q in measured {
            if !seen.insert(q) {
                return Err(RegistryError::DuplicateQubit(q));
            }
        }
        let mut groups = Vec::new();
        for &q in measured {
            match self.state(q)? {
                QubitState::Entangled(g) => {
                    if !groups.contains(&g) {
                        groups.push(g);
                    }
                }
                _ => return Err(RegistryError::NotEntangled(q)),
            }
        }
        Ok(groups)
    }

    /// Performs a successful n-fusion: jointly GHZ-measures `measured`,
    /// merging all involved groups and removing the measured qubits.
    ///
    /// With a single qubit this is a Pauli measurement (1-fusion) that
    /// shrinks its group by one. If fewer than two qubits remain across the
    /// involved groups, the survivors return to the free pool and no group
    /// survives.
    ///
    /// # Errors
    ///
    /// Returns an error if `measured` is empty, repeats a qubit, or contains
    /// a qubit that is not currently entangled.
    pub fn fuse(&mut self, measured: &[QubitId]) -> Result<FusionOutcome, RegistryError> {
        let groups = self.involved_groups(measured)?;
        let mut merged: BTreeSet<QubitId> = BTreeSet::new();
        for g in &groups {
            let members = self.groups[g.index()].take().expect("group is live");
            merged.extend(members);
        }
        for &q in measured {
            merged.remove(&q);
            self.states[q.index()] = QubitState::Consumed;
        }
        let arity = measured.len();
        if merged.len() < 2 {
            for &q in &merged {
                self.states[q.index()] = QubitState::Free;
            }
            return Ok(FusionOutcome {
                group: None,
                arity,
                survivors: 0,
            });
        }
        let gid = GroupId(self.groups.len());
        for &q in &merged {
            self.states[q.index()] = QubitState::Entangled(gid);
        }
        let survivors = merged.len();
        self.groups.push(Some(merged));
        Ok(FusionOutcome {
            group: Some(gid),
            arity,
            survivors,
        })
    }

    /// Records a *failed* probabilistic fusion: the measured qubits are
    /// consumed and the entanglement of every involved group is destroyed
    /// (their surviving members return to the free pool, their states now
    /// useless for the current quantum state).
    ///
    /// # Errors
    ///
    /// Same conditions as [`EntanglementRegistry::fuse`].
    pub fn fail_fuse(&mut self, measured: &[QubitId]) -> Result<(), RegistryError> {
        let groups = self.involved_groups(measured)?;
        for g in groups {
            let members = self.groups[g.index()].take().expect("group is live");
            for q in members {
                self.states[q.index()] = QubitState::Free;
            }
        }
        for &q in measured {
            self.states[q.index()] = QubitState::Consumed;
        }
        Ok(())
    }

    /// Attempts a fusion that succeeds with probability `success`, sampling
    /// from `rng`. Returns the outcome on success, `None` on failure.
    ///
    /// # Errors
    ///
    /// Same conditions as [`EntanglementRegistry::fuse`].
    ///
    /// # Panics
    ///
    /// Panics if `success` is outside `[0, 1]`.
    pub fn try_fuse(
        &mut self,
        rng: &mut impl Rng,
        success: f64,
        measured: &[QubitId],
    ) -> Result<Option<FusionOutcome>, RegistryError> {
        // Validate before sampling so errors do not depend on RNG state.
        self.involved_groups(measured)?;
        if rng.gen_bool(success) {
            Ok(Some(self.fuse(measured)?))
        } else {
            self.fail_fuse(measured)?;
            Ok(None)
        }
    }

    /// Pauli-measures `q` out of its group (1-fusion): an n-GHZ state
    /// becomes an (n-1)-GHZ state.
    ///
    /// # Errors
    ///
    /// Returns an error if `q` is not entangled.
    pub fn measure_out(&mut self, q: QubitId) -> Result<FusionOutcome, RegistryError> {
        self.fuse(&[q])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn reg_with_pairs(n: usize) -> (EntanglementRegistry, Vec<(QubitId, QubitId)>) {
        let mut reg = EntanglementRegistry::new();
        let pairs: Vec<_> = (0..n)
            .map(|_| {
                let a = reg.alloc();
                let b = reg.alloc();
                reg.create_pair(a, b).unwrap();
                (a, b)
            })
            .collect();
        (reg, pairs)
    }

    #[test]
    fn create_pair_entangles() {
        let (reg, pairs) = reg_with_pairs(1);
        let (a, b) = pairs[0];
        assert!(reg.are_entangled(a, b));
        assert_eq!(reg.group_count(), 1);
        let g = reg.group_of(a).unwrap();
        assert_eq!(reg.group_size(g), Some(2));
        assert_eq!(reg.group_members(g).unwrap(), vec![a, b]);
    }

    #[test]
    fn create_pair_rejects_entangled() {
        let (mut reg, pairs) = reg_with_pairs(1);
        let (a, _) = pairs[0];
        let c = reg.alloc();
        assert_eq!(reg.create_pair(a, c), Err(RegistryError::NotFree(a)));
        assert_eq!(reg.create_pair(c, c), Err(RegistryError::DuplicateQubit(c)));
    }

    #[test]
    fn bsm_swapping_is_two_fusion() {
        // Fig. 1a: the switch holds one qubit of each Bell pair and fuses.
        let (mut reg, pairs) = reg_with_pairs(2);
        let (alice, sw1) = pairs[0];
        let (sw2, bob) = pairs[1];
        let out = reg.fuse(&[sw1, sw2]).unwrap();
        assert_eq!(out.arity, 2);
        assert_eq!(out.survivors, 2);
        assert!(reg.are_entangled(alice, bob));
        assert!(!reg.is_free(sw1), "measured qubits are consumed");
        assert_eq!(reg.group_of(sw1), None);
    }

    #[test]
    fn three_fusion_merges_three_groups() {
        // Fig. 1b / Fig. 2: a 3-GHZ measurement fuses three links at once.
        let (mut reg, pairs) = reg_with_pairs(3);
        let measured: Vec<_> = pairs.iter().map(|&(_, m)| m).collect();
        let out = reg.fuse(&measured).unwrap();
        assert_eq!(out.arity, 3);
        assert_eq!(out.survivors, 3);
        let far: Vec<_> = pairs.iter().map(|&(a, _)| a).collect();
        assert!(reg.are_entangled(far[0], far[1]));
        assert!(reg.are_entangled(far[1], far[2]));
        let g = out.group.unwrap();
        assert_eq!(reg.group_members(g).unwrap(), far);
    }

    #[test]
    fn fusion_within_single_group_shrinks_it() {
        // Fusing two qubits of the same 4-GHZ group leaves a 2-GHZ group.
        let (mut reg, pairs) = reg_with_pairs(2);
        let (a, m1) = pairs[0];
        let (m2, b) = pairs[1];
        reg.fuse(&[m1, m2]).unwrap(); // (a, b) Bell
        let (c, m3) = {
            let c = reg.alloc();
            let m = reg.alloc();
            reg.create_pair(c, m).unwrap();
            (c, m)
        };
        let out = reg.fuse(&[b, m3]).unwrap(); // chain to 2-GHZ on {a, c}
        assert_eq!(out.survivors, 2);
        assert!(reg.are_entangled(a, c));
    }

    #[test]
    fn pauli_measurement_shrinks_group() {
        let (mut reg, pairs) = reg_with_pairs(3);
        let measured: Vec<_> = pairs.iter().map(|&(_, m)| m).collect();
        let out = reg.fuse(&measured).unwrap();
        let g = out.group.unwrap();
        let members = reg.group_members(g).unwrap();
        let out2 = reg.measure_out(members[0]).unwrap();
        assert_eq!(out2.arity, 1);
        assert_eq!(out2.survivors, 2);
        assert!(reg.are_entangled(members[1], members[2]));
    }

    #[test]
    fn measuring_down_to_one_frees_the_survivor() {
        let (mut reg, pairs) = reg_with_pairs(1);
        let (a, b) = pairs[0];
        let out = reg.measure_out(a).unwrap();
        assert_eq!(out.group, None);
        assert_eq!(out.survivors, 0);
        assert!(reg.is_free(b), "lone survivor returns to the free pool");
        assert_eq!(reg.group_count(), 0);
    }

    #[test]
    fn failed_fusion_destroys_involved_groups() {
        let (mut reg, pairs) = reg_with_pairs(2);
        let (alice, sw1) = pairs[0];
        let (sw2, bob) = pairs[1];
        reg.fail_fuse(&[sw1, sw2]).unwrap();
        assert!(!reg.are_entangled(alice, bob));
        assert!(reg.is_free(alice));
        assert!(reg.is_free(bob));
        assert!(
            !reg.is_free(sw1),
            "measured qubits are consumed even on failure"
        );
        assert_eq!(reg.group_count(), 0);
    }

    #[test]
    fn try_fuse_samples_success() {
        let mut rng = StdRng::seed_from_u64(42);
        let (mut reg, pairs) = reg_with_pairs(2);
        let (_, sw1) = pairs[0];
        let (sw2, _) = pairs[1];
        let out = reg.try_fuse(&mut rng, 1.0, &[sw1, sw2]).unwrap();
        assert!(out.is_some());

        let (mut reg2, pairs2) = reg_with_pairs(2);
        let out2 = reg2
            .try_fuse(&mut rng, 0.0, &[pairs2[0].1, pairs2[1].0])
            .unwrap();
        assert!(out2.is_none());
    }

    #[test]
    fn fuse_validates_inputs() {
        let (mut reg, pairs) = reg_with_pairs(1);
        let (a, _) = pairs[0];
        let free = reg.alloc();
        assert_eq!(reg.fuse(&[]), Err(RegistryError::EmptyFusion));
        assert_eq!(reg.fuse(&[a, a]), Err(RegistryError::DuplicateQubit(a)));
        assert_eq!(reg.fuse(&[free]), Err(RegistryError::NotEntangled(free)));
        assert_eq!(
            reg.fuse(&[QubitId(999)]),
            Err(RegistryError::UnknownQubit(QubitId(999)))
        );
    }

    #[test]
    fn reset_clears_state_and_reissues_ids() {
        let (mut reg, pairs) = reg_with_pairs(3);
        assert_eq!(reg.qubit_count(), 6);
        assert_eq!(reg.group_count(), 3);
        reg.reset();
        assert_eq!(reg.qubit_count(), 0);
        assert_eq!(reg.group_count(), 0);
        let (old_a, old_b) = pairs[0];
        assert!(!reg.are_entangled(old_a, old_b), "stale ids must be dead");
        assert_eq!(reg.group_of(old_a), None);
        // Refill: ids restart from zero and behave like a fresh registry.
        let a = reg.alloc();
        let b = reg.alloc();
        assert_eq!(a.index(), 0);
        reg.create_pair(a, b).unwrap();
        assert!(reg.are_entangled(a, b));
        assert_eq!(reg.group_count(), 1);
    }

    #[test]
    fn with_capacity_starts_empty() {
        let reg = EntanglementRegistry::with_capacity(64);
        assert_eq!(reg.qubit_count(), 0);
        assert_eq!(reg.group_count(), 0);
    }

    #[test]
    fn error_display_is_informative() {
        assert_eq!(
            RegistryError::EmptyFusion.to_string(),
            "fusion requires at least one qubit"
        );
        assert_eq!(
            RegistryError::NotFree(QubitId(3)).to_string(),
            "qubit q3 is not free"
        );
    }

    proptest! {
        /// Random fusion workloads must preserve the partition invariants:
        /// every entangled qubit belongs to exactly one live group, every
        /// live group has >= 2 members, consumed qubits belong to none, and
        /// a successful merge of k groups with m measured qubits leaves
        /// sum(sizes) - m survivors.
        #[test]
        fn partition_invariants(ops in proptest::collection::vec((0usize..40, 0usize..40), 1..60)) {
            let (mut reg, pairs) = reg_with_pairs(20);
            let qubits: Vec<QubitId> = pairs.iter().flat_map(|&(a, b)| [a, b]).collect();
            for (i, j) in ops {
                let (a, b) = (qubits[i], qubits[j]);
                // Attempt a 2-fusion when both are entangled; expected
                // survivor count is checked when the fusion is legal.
                let ga = reg.group_of(a);
                let gb = reg.group_of(b);
                match (ga, gb) {
                    (Some(ga), Some(gb)) if a != b => {
                        let before: usize = if ga == gb {
                            reg.group_size(ga).unwrap()
                        } else {
                            reg.group_size(ga).unwrap() + reg.group_size(gb).unwrap()
                        };
                        let out = reg.fuse(&[a, b]).unwrap();
                        let expect = before - 2;
                        if expect >= 2 {
                            prop_assert_eq!(out.survivors, expect);
                        } else {
                            prop_assert_eq!(out.group, None);
                        }
                    }
                    _ => {}
                }
            }
            // Partition invariants over the final state.
            let mut seen_in_groups = std::collections::HashSet::new();
            for gi in 0..reg.groups.len() {
                if let Some(members) = reg.group_members(GroupId(gi)) {
                    prop_assert!(members.len() >= 2, "live group below Bell size");
                    for q in members {
                        prop_assert_eq!(reg.group_of(q), Some(GroupId(gi)));
                        prop_assert!(seen_in_groups.insert(q), "qubit in two groups");
                    }
                }
            }
            for &q in &qubits {
                if reg.group_of(q).is_none() {
                    prop_assert!(!seen_in_groups.contains(&q));
                }
            }
        }
    }
}
