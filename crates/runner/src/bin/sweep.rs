//! Orchestrates multi-seed sweep campaigns over the routing pipeline.
//!
//! ```text
//! sweep run --spec FILE [--out DIR] [--threads N] [--max-cells N] [--fresh] [--quiet]
//!     Runs (or resumes) the campaign described by FILE (TOML or JSON; see
//!     `sweep example-spec`). Completed cells are skipped; an interrupted
//!     run resumes where it stopped. On completion the aggregated summary
//!     is written to <DIR>/summary.json and printed.
//!
//! sweep aggregate [--out DIR] [--rows FILE]
//!     Re-aggregates <DIR>/rows.jsonl into <DIR>/summary.json and prints
//!     the table; --rows FILE instead aggregates an arbitrary JSONL file
//!     in the shared schema (e.g. `figures scale`'s scale.jsonl) without
//!     writing anything.
//!
//! sweep list-presets
//!     Prints the canonical preset names sweep specs are authored against.
//!
//! sweep example-spec
//!     Prints a commented example TOML spec covering the whole schema.
//! ```
//!
//! Output layout of a campaign directory: `rows.jsonl` (one JSON row per
//! completed cell, append-only), `manifest.json` (campaign progress,
//! atomically replaced), `summary.json` (per-configuration mean ± 95% CI,
//! byte-deterministic).

use std::path::PathBuf;

use fusion_bench::workloads::{preset_names, resolve_preset};
use fusion_runner::campaign::{aggregate_campaign, run_campaign, RunOptions};
use fusion_runner::spec::SweepSpec;
use fusion_runner::store::CampaignStore;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("aggregate") => cmd_aggregate(&args[1..]),
        Some("list-presets") => cmd_list_presets(),
        Some("example-spec") => print!("{}", SweepSpec::example_toml()),
        Some("--help" | "-h" | "help") | None => usage(),
        Some(other) => die(&format!("unknown subcommand {other:?}; try `sweep --help`")),
    }
}

fn usage() {
    println!(
        "usage:\n  sweep run --spec FILE [--out DIR] [--threads N] [--max-cells N] [--fresh] [--quiet]\n  sweep aggregate [--out DIR] [--rows FILE]\n  sweep list-presets\n  sweep example-spec"
    );
}

fn cmd_run(args: &[String]) {
    let mut spec_path: Option<PathBuf> = None;
    let mut out_dir = PathBuf::from("results/sweep");
    let mut threads: Option<usize> = None;
    let mut max_cells: Option<usize> = None;
    let mut fresh = false;
    let mut quiet = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--spec" => {
                spec_path = Some(
                    it.next()
                        .map(PathBuf::from)
                        .unwrap_or_else(|| die("--spec needs a file path")),
                );
            }
            "--out" => {
                out_dir = it
                    .next()
                    .map(PathBuf::from)
                    .unwrap_or_else(|| die("--out needs a directory"));
            }
            "--threads" => {
                let n: usize = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--threads needs a positive integer"));
                if n == 0 {
                    // `figures` uses 0 for "all cores"; here omitting the
                    // flag already means that, so 0 is almost always a
                    // typo'd spec variable — reject it loudly.
                    die(
                        "--threads 0 is not a worker count; omit --threads to use all \
                         cores, or pass an explicit positive number",
                    );
                }
                threads = Some(n);
            }
            "--max-cells" => {
                max_cells = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n: &usize| n > 0)
                        .unwrap_or_else(|| die("--max-cells needs a positive integer")),
                );
            }
            "--fresh" => fresh = true,
            "--quiet" => quiet = true,
            other => die(&format!("unknown flag {other:?} for `sweep run`")),
        }
    }

    let spec_path = spec_path.unwrap_or_else(|| die("`sweep run` needs --spec FILE"));
    let text = std::fs::read_to_string(&spec_path)
        .unwrap_or_else(|e| die(&format!("reading {}: {e}", spec_path.display())));
    let spec =
        SweepSpec::parse(&text).unwrap_or_else(|e| die(&format!("{}: {e}", spec_path.display())));

    if fresh {
        let mut store = CampaignStore::open(&out_dir)
            .unwrap_or_else(|e| die(&format!("opening {}: {e}", out_dir.display())));
        store
            .wipe()
            .unwrap_or_else(|e| die(&format!("wiping {}: {e}", out_dir.display())));
    }

    let opts = RunOptions {
        threads: threads
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, usize::from)),
        max_cells,
        progress: !quiet,
    };
    if !quiet {
        eprintln!(
            "campaign {:?}: {} cells, {} worker thread(s), dir {}",
            spec.name,
            spec.cells().len(),
            opts.threads,
            out_dir.display()
        );
    }
    let outcome = run_campaign(&spec, &out_dir, &opts).unwrap_or_else(|e| die(&e));
    if !quiet {
        eprintln!(
            "resumed {} cells, executed {}, {}/{} complete",
            outcome.resumed_cells,
            outcome.executed_cells,
            outcome.resumed_cells + outcome.executed_cells,
            outcome.total_cells
        );
        if outcome.dropped_rows > 0 {
            eprintln!(
                "warning: dropped {} corrupt line(s) from rows.jsonl",
                outcome.dropped_rows
            );
        }
    }
    if outcome.complete {
        let summaries = aggregate_campaign(&out_dir).unwrap_or_else(|e| die(&e));
        print!("{}", fusion_runner::render_table(&spec.name, &summaries));
    } else {
        eprintln!(
            "campaign incomplete ({} cells left); re-run the same command to resume",
            outcome.total_cells - outcome.resumed_cells - outcome.executed_cells
        );
        std::process::exit(3);
    }
}

fn cmd_aggregate(args: &[String]) {
    let mut out_dir = PathBuf::from("results/sweep");
    let mut rows_file: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => {
                out_dir = it
                    .next()
                    .map(PathBuf::from)
                    .unwrap_or_else(|| die("--out needs a directory"));
            }
            "--rows" => {
                rows_file = Some(
                    it.next()
                        .map(PathBuf::from)
                        .unwrap_or_else(|| die("--rows needs a JSONL file path")),
                );
            }
            other => die(&format!("unknown flag {other:?} for `sweep aggregate`")),
        }
    }
    // --rows aggregates an arbitrary JSONL file (e.g. the scale.jsonl the
    // `figures` binary writes) without touching a campaign directory.
    let (summaries, label) = match rows_file {
        Some(path) => {
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| die(&format!("reading {}: {e}", path.display())));
            let loaded = fusion_runner::store::parse_jsonl(&text);
            if loaded.dropped > 0 {
                eprintln!(
                    "warning: dropped {} unparseable line(s) from {}",
                    loaded.dropped,
                    path.display()
                );
            }
            (
                fusion_runner::aggregate_rows(&loaded.rows),
                path.display().to_string(),
            )
        }
        None => (
            aggregate_campaign(&out_dir).unwrap_or_else(|e| die(&e)),
            out_dir.display().to_string(),
        ),
    };
    if summaries.is_empty() {
        die(&format!("no result rows in {label}"));
    }
    print!("{}", fusion_runner::render_table(&label, &summaries));
}

fn cmd_list_presets() {
    println!("canonical presets (spec key `presets`):");
    for name in preset_names() {
        let c = resolve_preset(name).expect("listed presets resolve");
        println!(
            "  {name:<14} {:>6} switches  {:>3} states  kind={:<14} mc_rounds={}",
            c.topology.num_switches,
            c.topology.num_user_pairs,
            c.topology.kind.name(),
            c.mc_rounds,
        );
    }
    println!();
    println!("generators (spec keys `generator` + `switch_counts`):");
    for kind in fusion_topology::GeneratorKind::all_default() {
        println!("  {}", kind.name());
    }
    println!();
    println!("algorithms (spec key `algorithms`):");
    for algo in fusion_bench::workloads::Algorithm::ALL {
        println!("  {}", algo.name());
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
