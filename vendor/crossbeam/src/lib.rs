//! Offline stub of `crossbeam`: just `crossbeam::scope`, implemented on top
//! of `std::thread::scope` (stable since Rust 1.63). See `vendor/README.md`.
//!
//! Behavioral note: the real `crossbeam::scope` returns `Err` when a child
//! thread panics; `std::thread::scope` propagates the panic instead, so here
//! the `Result` is always `Ok`. Callers that `.expect()` the result behave
//! identically either way.

#![forbid(unsafe_code)]

use std::any::Any;

/// A scope handle mirroring `crossbeam_utils::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope handle (for
    /// nested spawns), matching crossbeam's signature.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Creates a scope in which threads borrowing from the environment can be
/// spawned; all spawned threads are joined before `scope` returns.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}
