//! Gain-per-qubit variant of Algorithm 3 (the pipeline default).
//!
//! The paper's pseudocode consumes candidates width-major: every width-5
//! route in the network is placed before any width-4 route. In the
//! evaluation regime its own baseline numbers imply (short routes over
//! lossy links, per-link success ≈ 0.6-0.7), maximal-width channels buy
//! almost no extra rate per qubit — a width-5 hop costs five times a
//! width-1 hop for a channel-success gain that is already saturated — so a
//! literal width-major merge strands half the network's qubits on one
//! over-wide branch per demand and loses to even the B1 baseline
//! (see EXPERIMENTS.md, "merge-order ablation").
//!
//! This variant keeps everything else from Algorithm 3 — candidate set,
//! capacity accounting, same-demand edge sharing — but accepts candidates
//! greedily by *marginal Eq.-1 gain per qubit spent*, which directly
//! implements the paper's Main Idea 2 ("a shorter path will use fewer
//! resources in the network, allowing the network to handle more
//! demands"). Width-major order remains available as
//! [`super::alg3::paths_merge`] for the ablation bench.

use std::collections::{BTreeMap, HashMap, HashSet};

use fusion_graph::NodeId;

use crate::algorithms::alg1::PathConstraints;
use crate::algorithms::alg2::CandidatePath;
use crate::algorithms::alg3::MergeOutcome;
use crate::demand::{Demand, DemandId};
use crate::flow::WidthedPath;
use crate::metrics;
use crate::network::QuantumNetwork;
use crate::plan::{DemandPlan, SwapMode};

/// Gains below this threshold are treated as saturation and not worth
/// qubits.
const MIN_GAIN: f64 = 1e-9;

/// Runs the gain-per-qubit merge over the candidate set. Parameters are as
/// in [`super::alg3::paths_merge_bounded`].
#[must_use]
pub fn paths_merge_greedy(
    net: &QuantumNetwork,
    demands: &[Demand],
    candidates: &[CandidatePath],
    mode: SwapMode,
    share_edges: bool,
    max_paths_per_demand: Option<usize>,
) -> MergeOutcome {
    let share_edges = share_edges && mode == SwapMode::NFusion;
    let mut remaining = net.capacities();
    let mut plans: Vec<DemandPlan> = demands.iter().map(|&d| DemandPlan::empty(d)).collect();
    let index_of: HashMap<DemandId, usize> =
        demands.iter().enumerate().map(|(i, d)| (d.id, i)).collect();
    let mut assigned: HashSet<(DemandId, (NodeId, NodeId))> = HashSet::new();
    let mut alive: Vec<bool> = vec![true; candidates.len()];

    loop {
        // Rank every still-viable candidate by marginal gain per qubit.
        let mut best: Option<(f64, usize, BTreeMap<NodeId, u32>)> = None;
        for (ci, cand) in candidates.iter().enumerate() {
            if !alive[ci] {
                continue;
            }
            let Some(&plan_idx) = index_of.get(&cand.demand) else {
                alive[ci] = false;
                continue;
            };
            let plan = &plans[plan_idx];
            if let Some(limit) = max_paths_per_demand {
                if plan.paths.len() >= limit {
                    alive[ci] = false;
                    continue;
                }
            }

            // Qubit need over unshared hops (per-node totals).
            let mut need: BTreeMap<NodeId, u32> = BTreeMap::new();
            let mut cost: u32 = 0;
            for (u, v) in cand.path.hops_iter() {
                let key = (cand.demand, PathConstraints::hop_key(u, v));
                if share_edges && assigned.contains(&key) {
                    continue;
                }
                *need.entry(u).or_insert(0) += cand.width;
                *need.entry(v).or_insert(0) += cand.width;
                // Only switch qubits are scarce.
                cost += u32::from(net.is_switch(u)) * cand.width
                    + u32::from(net.is_switch(v)) * cand.width;
            }
            if need.is_empty() {
                alive[ci] = false; // fully shared: nothing to add
                continue;
            }
            if need.iter().any(|(&n, &a)| remaining[n.index()] < a) {
                // Capacity only shrinks within a run unless sharing opens
                // up; keep the candidate alive only in sharing mode.
                if !share_edges {
                    alive[ci] = false;
                }
                continue;
            }

            let gain = match mode {
                SwapMode::NFusion => {
                    let mut widened = plan.flow.clone();
                    crate::algorithms::alg3::record_route(
                        &mut widened,
                        &cand.path,
                        cand.width,
                        share_edges,
                    );
                    metrics::flow_rate(net, &widened).value()
                        - metrics::flow_rate(net, &plan.flow).value()
                }
                SwapMode::Classic => {
                    // Independent alternative paths: gain of one more.
                    let current = plan.rate(net, mode);
                    let wp = WidthedPath::uniform(cand.path.clone(), cand.width);
                    let s = metrics::classic::success_probability(net, &wp);
                    (1.0 - (1.0 - current) * (1.0 - s)) - current
                }
            };
            if gain < MIN_GAIN {
                alive[ci] = false;
                continue;
            }
            let score = gain / f64::from(cost.max(1));
            if best.as_ref().is_none_or(|(b, _, _)| score > *b) {
                best = Some((score, ci, need));
            }
        }

        let Some((_, ci, need)) = best else { break };
        let cand = &candidates[ci];
        let plan_idx = index_of[&cand.demand];
        for (&node, &amount) in &need {
            remaining[node.index()] -= amount;
        }
        for (u, v) in cand.path.hops_iter() {
            assigned.insert((cand.demand, PathConstraints::hop_key(u, v)));
        }
        let plan = &mut plans[plan_idx];
        crate::algorithms::alg3::record_route(&mut plan.flow, &cand.path, cand.width, share_edges);
        plan.paths
            .push(WidthedPath::uniform(cand.path.clone(), cand.width));
        alive[ci] = false;
    }
    MergeOutcome { plans, remaining }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::alg2::paths_selection;
    use crate::demand::DemandId;
    use fusion_graph::{Metric, Path};

    fn cand(demand: usize, nodes: Vec<NodeId>, width: u32, metric: f64) -> CandidatePath {
        CandidatePath {
            demand: DemandId::new(demand),
            path: Path::new(nodes),
            width,
            metric: Metric::new(metric),
        }
    }

    /// One demand, one route, offered at widths 1, 2 and 5; p high enough
    /// that width-5 wastes qubits.
    fn high_p_net() -> (QuantumNetwork, Vec<NodeId>) {
        let mut b = QuantumNetwork::builder();
        let s = b.user(0.0, 0.0);
        let v1 = b.switch(1.0, 0.0, 10);
        let v2 = b.switch(2.0, 0.0, 10);
        let d = b.user(3.0, 0.0);
        for (u, v) in [(s, v1), (v1, v2), (v2, d)] {
            b.link(u, v).unwrap();
        }
        let mut net = b.build();
        net.set_uniform_link_success(Some(0.8));
        net.set_swap_success(0.9);
        (net, vec![s, v1, v2, d])
    }

    #[test]
    fn prefers_cheap_width_when_links_are_good() {
        let (net, n) = high_p_net();
        let demands = [Demand::new(DemandId::new(0), n[0], n[3])];
        let route = vec![n[0], n[1], n[2], n[3]];
        let candidates = vec![
            cand(0, route.clone(), 5, 0.80),
            cand(0, route.clone(), 2, 0.78),
            cand(0, route, 1, 0.52),
        ];
        let out = paths_merge_greedy(&net, &demands, &candidates, SwapMode::NFusion, true, None);
        // The first accepted path must be a narrow one (gain per qubit),
        // leaving capacity for Algorithm 4 / other demands.
        let first_width = out.plans[0].paths[0].widths[0];
        assert!(first_width <= 2, "greedy picked width {first_width}");
    }

    #[test]
    fn prefers_wide_when_links_are_bad() {
        let (mut net, n) = high_p_net();
        net.set_uniform_link_success(Some(0.1));
        let demands = [Demand::new(DemandId::new(0), n[0], n[3])];
        let route = vec![n[0], n[1], n[2], n[3]];
        // Width-1: (0.1)^3 q^2 ~ 8e-4; width-5: (0.41)^3 q^2 ~ 0.056.
        // Gain per qubit: wide wins by ~14x even at 5x the cost.
        let candidates = vec![cand(0, route.clone(), 5, 0.056), cand(0, route, 1, 8.1e-4)];
        let out = paths_merge_greedy(&net, &demands, &candidates, SwapMode::NFusion, true, None);
        assert_eq!(out.plans[0].paths[0].widths[0], 5);
    }

    #[test]
    fn capacity_conserved_and_no_oversubscription() {
        let (net, n) = high_p_net();
        let demands = [
            Demand::new(DemandId::new(0), n[0], n[3]),
            Demand::new(DemandId::new(1), n[3], n[0]),
        ];
        let caps = net.capacities();
        let candidates = paths_selection(&net, &demands, &caps, 3, 5, SwapMode::NFusion);
        let out = paths_merge_greedy(&net, &demands, &candidates, SwapMode::NFusion, true, None);
        for node in [n[1], n[2]] {
            let spent: u32 = out.plans.iter().map(|p| p.flow.qubits_at(node)).sum();
            assert!(spent <= net.capacity(node));
            assert_eq!(spent + out.remaining[node.index()], net.capacity(node));
        }
    }

    #[test]
    fn respects_path_cap() {
        let (net, n) = high_p_net();
        let demands = [Demand::new(DemandId::new(0), n[0], n[3])];
        let route = vec![n[0], n[1], n[2], n[3]];
        let candidates = vec![cand(0, route.clone(), 1, 0.5), cand(0, route, 2, 0.7)];
        let out = paths_merge_greedy(
            &net,
            &demands,
            &candidates,
            SwapMode::NFusion,
            true,
            Some(1),
        );
        assert_eq!(out.plans[0].paths.len(), 1);
    }

    #[test]
    fn saturated_demands_stop_consuming() {
        let (mut net, n) = high_p_net();
        net.set_uniform_link_success(Some(1.0));
        net.set_swap_success(1.0);
        let demands = [Demand::new(DemandId::new(0), n[0], n[3])];
        let route = vec![n[0], n[1], n[2], n[3]];
        let candidates = vec![
            cand(0, route.clone(), 1, 1.0),
            cand(0, route.clone(), 2, 1.0),
            cand(0, route, 5, 1.0),
        ];
        let out = paths_merge_greedy(&net, &demands, &candidates, SwapMode::NFusion, true, None);
        // Rate 1.0 after the first width-1 path; everything else is
        // saturation and must be declined.
        assert_eq!(out.plans[0].paths.len(), 1);
        assert_eq!(out.plans[0].paths[0].widths[0], 1);
    }
}
