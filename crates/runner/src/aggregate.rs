//! Streaming aggregation of result rows into per-configuration summaries.
//!
//! Rows (from a sweep campaign's JSONL store or from `figures scale`
//! output — same schema) are grouped by `(preset, switches, load,
//! algorithm)` and their `rate` metric is folded through a
//! [`Welford`] accumulator into a mean with a 95% confidence interval.
//!
//! Aggregation is deterministic byte-for-byte: rows are sorted into a
//! canonical order before folding (float addition is not associative), so
//! the summary of a campaign is identical no matter how many worker
//! threads produced the rows, in what order the shards finished, or how
//! often the campaign was interrupted and resumed.

use std::fmt::Write as _;

use fusion_bench::report::{Row, Welford};

/// Aggregated statistics of one `(preset, switches, load, algorithm)`
/// configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupSummary {
    /// Preset label.
    pub preset: String,
    /// Configured switch count.
    pub switches: i64,
    /// Demand load (`num_user_pairs`).
    pub load: i64,
    /// Algorithm display name.
    pub algorithm: String,
    /// Seeds folded (rows in the group).
    pub seeds: u64,
    /// Mean entanglement rate across seeds.
    pub mean_rate: f64,
    /// Unbiased sample standard deviation across seeds.
    pub stddev: f64,
    /// Half-width of the ~95% confidence interval of the mean.
    pub ci95: f64,
    /// Mean of each telemetry metric column (`m_<counter>`) across the
    /// rows that carry it, sorted by column name. Empty for campaigns
    /// recorded before the telemetry layer (or with it disabled), which
    /// keeps their summaries byte-identical to what they were.
    pub metrics: Vec<(String, f64)>,
}

impl GroupSummary {
    /// Serializes the summary as one flat JSON object.
    #[must_use]
    pub fn to_row(&self) -> Row {
        let mut row = Row::new();
        #[allow(clippy::cast_possible_wrap)]
        row.push_str("preset", self.preset.clone())
            .push_int("switches", self.switches)
            .push_int("load", self.load)
            .push_str("algorithm", self.algorithm.clone())
            .push_int("seeds", self.seeds as i64)
            .push_num("mean_rate", self.mean_rate)
            .push_num("stddev", self.stddev)
            .push_num("ci95", self.ci95);
        // Metric columns come last, after the pinned base schema, in
        // sorted-name order (`summary_schema_is_pinned` enforces this).
        for (name, mean) in &self.metrics {
            row.push_num(&format!("mean_{name}"), *mean);
        }
        row
    }
}

/// The canonical sort key of a result row: group identity first, then the
/// seed axis so the Welford fold order is reproducible.
fn sort_key(row: &Row) -> (String, i64, i64, String, i64, i64) {
    (
        row.str_field("preset").unwrap_or("").to_string(),
        row.int_field("switches").unwrap_or(-1),
        row.int_field("load").unwrap_or(-1),
        row.str_field("algorithm").unwrap_or("").to_string(),
        row.int_field("seed_index").unwrap_or(i64::MAX),
        row.int_field("seed").unwrap_or(i64::MAX),
    )
}

/// Folds rows into per-configuration summaries, sorted by
/// `(preset, switches, load, algorithm)`. Rows without a `rate` field are
/// ignored.
#[must_use]
pub fn aggregate_rows(rows: &[Row]) -> Vec<GroupSummary> {
    // Dedup by cell key (first occurrence wins): two concurrent runs of
    // the same campaign, or a manually concatenated rows file, must not
    // double-count a cell and shrink the reported CI. Rows without a
    // `cell` field (e.g. `figures scale` output) are kept as-is.
    let mut seen_cells = std::collections::HashSet::new();
    let mut sorted: Vec<&Row> = rows
        .iter()
        .filter(|r| r.num_field("rate").is_some())
        .filter(|r| match r.str_field("cell") {
            Some(cell) => seen_cells.insert(cell.to_string()),
            None => true,
        })
        .collect();
    // Cached: the key clones two Strings, so build it once per row
    // rather than per comparison.
    sorted.sort_by_cached_key(|r| sort_key(r));

    let mut groups: Vec<GroupSummary> = Vec::new();
    let mut acc = Welford::new();
    let mut metric_acc: std::collections::BTreeMap<String, Welford> =
        std::collections::BTreeMap::new();
    for row in sorted {
        let preset = row.str_field("preset").unwrap_or("").to_string();
        let switches = row.int_field("switches").unwrap_or(-1);
        let load = row.int_field("load").unwrap_or(-1);
        let algorithm = row.str_field("algorithm").unwrap_or("").to_string();
        let same_group = groups.last().is_some_and(|g| {
            g.preset == preset
                && g.switches == switches
                && g.load == load
                && g.algorithm == algorithm
        });
        if !same_group {
            acc = Welford::new();
            metric_acc.clear();
            groups.push(GroupSummary {
                preset,
                switches,
                load,
                algorithm,
                seeds: 0,
                mean_rate: 0.0,
                stddev: 0.0,
                ci95: 0.0,
                metrics: Vec::new(),
            });
        }
        acc.push(row.num_field("rate").expect("filtered above"));
        // Telemetry columns fold through their own per-metric Welford
        // streams, in the same canonical row order as `rate` (the means
        // are exact over integers anyway, but the discipline keeps the
        // serialization byte-stable if histogram-derived floats appear).
        for (key, _) in row.fields() {
            if !key.starts_with("m_") {
                continue;
            }
            if let Some(value) = row.num_field(key) {
                metric_acc.entry(key.clone()).or_default().push(value);
            }
        }
        let group = groups.last_mut().expect("pushed above");
        group.seeds = acc.count();
        group.mean_rate = acc.mean();
        group.stddev = acc.stddev();
        group.ci95 = acc.ci95_half();
        group.metrics = metric_acc
            .iter()
            .map(|(name, w)| (name.clone(), w.mean()))
            .collect();
    }
    groups
}

/// Serializes summaries as a deterministic JSON array (one flat object
/// per line), the artifact the byte-identity guarantees apply to.
#[must_use]
pub fn summary_json(summaries: &[GroupSummary]) -> String {
    let mut out = String::from("[\n");
    for (i, summary) in summaries.iter().enumerate() {
        out.push_str(&summary.to_row().to_json());
        if i + 1 < summaries.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Parses the array written by [`summary_json`] back into summaries.
///
/// # Errors
///
/// Returns a description of the first malformed entry.
pub fn parse_summary_json(text: &str) -> Result<Vec<GroupSummary>, String> {
    let body = text.trim();
    let body = body
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or("expected a JSON array")?;
    let mut out = Vec::new();
    for line in body.lines() {
        let line = line.trim().trim_end_matches(',');
        if line.is_empty() {
            continue;
        }
        let row = Row::parse_json(line)?;
        let metrics = row
            .fields()
            .iter()
            .filter_map(|(key, _)| {
                let name = key.strip_prefix("mean_m_")?;
                Some((format!("m_{name}"), row.num_field(key)?))
            })
            .collect();
        out.push(GroupSummary {
            preset: row.str_field("preset").unwrap_or("").to_string(),
            switches: row.int_field("switches").unwrap_or(-1),
            load: row.int_field("load").unwrap_or(-1),
            algorithm: row.str_field("algorithm").unwrap_or("").to_string(),
            #[allow(clippy::cast_sign_loss)]
            seeds: row.int_field("seeds").unwrap_or(0).max(0) as u64,
            mean_rate: row.num_field("mean_rate").unwrap_or(0.0),
            stddev: row.num_field("stddev").unwrap_or(0.0),
            ci95: row.num_field("ci95").unwrap_or(0.0),
            metrics,
        });
    }
    Ok(out)
}

/// Renders the summaries as an aligned text table — the Fig. 9b extension
/// view: entanglement rate (mean ± 95% CI over seeds) per switch count,
/// load, and algorithm.
#[must_use]
pub fn render_table(title: &str, summaries: &[GroupSummary]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {title} — mean entanglement rate ± 95% CI");
    let _ = writeln!(
        out,
        "{:<16}{:>9}{:>7}  {:<14}{:>6}{:>12}{:>12}",
        "preset", "switches", "load", "algorithm", "seeds", "mean", "±ci95"
    );
    for s in summaries {
        let _ = writeln!(
            out,
            "{:<16}{:>9}{:>7}  {:<14}{:>6}{:>12.4}{:>12.4}",
            s.preset, s.switches, s.load, s.algorithm, s.seeds, s.mean_rate, s.ci95
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result_row(preset: &str, switches: i64, algo: &str, seed_index: i64, rate: f64) -> Row {
        let mut row = Row::new();
        row.push_str("cell", format!("{preset}/load5/{algo}/seed{seed_index}"))
            .push_str("preset", preset)
            .push_int("switches", switches)
            .push_int("load", 5)
            .push_str("algorithm", algo)
            .push_int("seed_index", seed_index)
            .push_num("rate", rate)
            .push_num("wall_ms", rate * 17.0); // non-deterministic field, ignored
        row
    }

    #[test]
    fn groups_fold_in_canonical_order_regardless_of_row_order() {
        let mut rows = vec![
            result_row("a", 100, "ALG-N-FUSION", 0, 1.0),
            result_row("a", 100, "ALG-N-FUSION", 1, 2.0),
            result_row("a", 100, "ALG-N-FUSION", 2, 4.0),
            result_row("b", 200, "Q-CAST-N", 0, 3.0),
            result_row("b", 200, "Q-CAST-N", 1, 5.0),
        ];
        let forward = aggregate_rows(&rows);
        rows.reverse();
        let backward = aggregate_rows(&rows);
        assert_eq!(forward, backward, "aggregation must sort before folding");
        assert_eq!(
            summary_json(&forward),
            summary_json(&backward),
            "serialized summaries must be byte-identical"
        );
        assert_eq!(forward.len(), 2);
        let a = &forward[0];
        assert_eq!((a.preset.as_str(), a.seeds), ("a", 3));
        assert!((a.mean_rate - 7.0 / 3.0).abs() < 1e-12);
        let b = &forward[1];
        assert_eq!((b.algorithm.as_str(), b.seeds), ("Q-CAST-N", 2));
        assert_eq!(b.mean_rate, 4.0);
        assert!((b.stddev - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn summary_json_round_trips() {
        let rows = vec![
            result_row("a", 100, "ALG-N-FUSION", 0, 1.5),
            result_row("a", 100, "ALG-N-FUSION", 1, 2.5),
        ];
        let summaries = aggregate_rows(&rows);
        let text = summary_json(&summaries);
        assert_eq!(parse_summary_json(&text).unwrap(), summaries);
    }

    #[test]
    fn duplicate_cell_rows_count_once() {
        // Two concurrent runs of one campaign can append every cell
        // twice; the duplicates must not inflate the seed count (and
        // thereby shrink the CI).
        let rows = vec![
            result_row("a", 100, "ALG-N-FUSION", 0, 1.0),
            result_row("a", 100, "ALG-N-FUSION", 1, 2.0),
            result_row("a", 100, "ALG-N-FUSION", 0, 1.0),
            result_row("a", 100, "ALG-N-FUSION", 1, 2.0),
        ];
        let summaries = aggregate_rows(&rows);
        assert_eq!(summaries.len(), 1);
        assert_eq!(summaries[0].seeds, 2, "duplicates must collapse");
        assert_eq!(summaries[0].mean_rate, 1.5);
    }

    #[test]
    fn rows_without_rate_are_ignored() {
        let mut bad = Row::new();
        bad.push_str("preset", "a");
        let rows = vec![bad, result_row("a", 100, "ALG-N-FUSION", 0, 2.0)];
        let summaries = aggregate_rows(&rows);
        assert_eq!(summaries.len(), 1);
        assert_eq!(summaries[0].seeds, 1);
    }

    #[test]
    fn metric_columns_aggregate_to_means() {
        let mut r0 = result_row("a", 100, "ALG-N-FUSION", 0, 1.0);
        r0.push_int("m_alg2.search.pops", 10)
            .push_int("m_mc.rounds", 400);
        let mut r1 = result_row("a", 100, "ALG-N-FUSION", 1, 2.0);
        r1.push_int("m_alg2.search.pops", 30)
            .push_int("m_mc.rounds", 400);
        let summaries = aggregate_rows(&[r0, r1]);
        assert_eq!(summaries.len(), 1);
        assert_eq!(
            summaries[0].metrics,
            vec![
                ("m_alg2.search.pops".to_string(), 20.0),
                ("m_mc.rounds".to_string(), 400.0),
            ]
        );
        let text = summary_json(&summaries);
        assert!(text.contains("\"mean_m_alg2.search.pops\""));
        assert_eq!(parse_summary_json(&text).unwrap(), summaries);
    }

    #[test]
    fn summary_schema_is_pinned() {
        // The serialized column order is part of the summary.json
        // contract: the base statistics columns in this exact order,
        // then every telemetry metric column (`mean_m_<counter>`)
        // strictly after them in sorted-name order. A new metric column
        // must extend the tail, never reorder the base schema.
        let mut row = result_row("a", 100, "ALG-N-FUSION", 0, 1.0);
        row.push_int("m_zz.last", 1).push_int("m_aa.first", 2);
        let summaries = aggregate_rows(&[row]);
        let keys: Vec<String> = summaries[0]
            .to_row()
            .fields()
            .iter()
            .map(|(k, _)| k.clone())
            .collect();
        assert_eq!(
            keys,
            vec![
                "preset",
                "switches",
                "load",
                "algorithm",
                "seeds",
                "mean_rate",
                "stddev",
                "ci95",
                "mean_m_aa.first",
                "mean_m_zz.last",
            ]
        );
    }

    #[test]
    fn repair_counters_ride_the_metric_contract() {
        // The slice-repair and shared-SPT counters surface in sweeps
        // through the same generic `m_<counter>` mechanism as every
        // other registry entry — pin their exact column names so a
        // counter rename upstream cannot silently drop them from
        // summary.json (`mean_m_<counter>`, sorted tail of the schema).
        const REPAIR_COUNTERS: [&str; 6] = [
            "m_serve.cache.damaged",
            "m_serve.cache.repairs",
            "m_serve.cache.repair_depth/count",
            "m_alg2.spt.queries",
            "m_alg2.spt.hits",
            "m_alg2.spt.shared_settles",
        ];
        let mut r0 = result_row("a", 100, "ALG-N-FUSION", 0, 1.0);
        let mut r1 = result_row("a", 100, "ALG-N-FUSION", 1, 3.0);
        for (i, name) in REPAIR_COUNTERS.iter().enumerate() {
            r0.push_int(name, 2 * i as i64);
            r1.push_int(name, 4 * i as i64);
        }
        let summaries = aggregate_rows(&[r0, r1]);
        assert_eq!(summaries.len(), 1);
        for (i, name) in REPAIR_COUNTERS.iter().enumerate() {
            let mean = summaries[0]
                .metrics
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, v)| v);
            assert_eq!(mean, Some(3.0 * i as f64), "{name} must fold to its mean");
        }
        let text = summary_json(&summaries);
        for name in REPAIR_COUNTERS {
            assert!(
                text.contains(&format!("\"mean_{name}\"")),
                "{name} missing from summary.json"
            );
        }
        assert_eq!(parse_summary_json(&text).unwrap(), summaries);
    }

    #[test]
    fn table_renders_every_group() {
        let rows = vec![
            result_row("a", 100, "ALG-N-FUSION", 0, 1.0),
            result_row("b", 200, "Q-CAST-N", 0, 2.0),
        ];
        let table = render_table("sweep", &aggregate_rows(&rows));
        assert!(table.contains("preset"));
        assert!(table.contains("±ci95"));
        assert!(table.lines().count() >= 4);
        assert!(table.contains("Q-CAST-N"));
    }
}
