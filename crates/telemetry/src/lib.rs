//! `fusion-telemetry`: hand-rolled instrumentation for the routing stack.
//!
//! Three primitives, two strictly separated planes:
//!
//! * **Counters** ([`Counter`]) — monotonic `u64` event counts. Purely a
//!   function of the work performed, so for a fixed input they are
//!   byte-deterministic across runs, thread counts (within one
//!   deterministic computation), and process restarts.
//! * **Histograms** ([`Histogram`]) — power-of-two-bucket value
//!   distributions (footprint sizes, set cardinalities). Same
//!   deterministic plane as counters.
//! * **Spans** ([`SpanGuard`]) — nested RAII wall-time measurements.
//!   Wall time is *never* deterministic, so spans live in a separate
//!   timing plane: they are excluded from [`Registry::snapshot`] and can
//!   therefore never leak into a byte-stable digest. Export them with
//!   [`Registry::timing_json`] when profiling.
//!
//! A [`Registry`] is global-free: handles are created from an explicit
//! registry value and threaded through the code that does the counting.
//! [`Registry::disabled`] (the default) hands out no-op handles — one
//! `Option` check on a `None` that never changes, which the branch
//! predictor eats — so instrumented hot paths cost nothing measurable
//! when telemetry is off.
//!
//! The deterministic plane exports as a *versioned flat JSON* snapshot
//! ([`MetricsSnapshot`]), the same discipline as `BENCH_BASELINE.json`:
//! one flat map of sorted keys to integers, trivially diffable and
//! parseable without a JSON library.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Number of power-of-two histogram buckets: bucket 0 counts value 0,
/// bucket `k` (1-based) counts values with `floor(log2(v)) == k - 1`,
/// i.e. `v` in `[2^(k-1), 2^k)`. Bucket 64 catches `u64::MAX` class.
const HISTOGRAM_BUCKETS: usize = 65;

/// Snapshot format version, bumped on any change to the JSON layout.
pub const SNAPSHOT_VERSION: u64 = 1;

/// The key the version is stored under in the flat snapshot map. Leading
/// underscores sort it ahead of every metric name.
pub const VERSION_KEY: &str = "__telemetry_version__";

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for HistogramInner {
    fn default() -> Self {
        HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

#[derive(Debug, Default)]
struct SpanStat {
    count: u64,
    total_ns: u128,
}

/// Shared state behind an enabled registry.
#[derive(Debug, Default)]
struct Inner {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramInner>>>,
    spans: Mutex<BTreeMap<String, SpanStat>>,
}

/// A global-free metric registry. Cloning is cheap (an `Arc` bump) and
/// clones share the same metric store, so a registry can be handed to
/// every layer of a pipeline and read back once at the top.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Option<Arc<Inner>>,
}

impl Registry {
    /// A live registry: handles created from it record for real.
    #[must_use]
    pub fn enabled() -> Self {
        Registry {
            inner: Some(Arc::new(Inner::default())),
        }
    }

    /// A disabled registry: every handle it creates is a no-op. This is
    /// `Default` so un-instrumented construction paths stay zero-cost.
    #[must_use]
    pub fn disabled() -> Self {
        Registry { inner: None }
    }

    /// Whether handles from this registry record anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Returns the counter named `name`, creating it at zero on first
    /// use. Asking twice returns handles to the same underlying cell.
    ///
    /// # Panics
    ///
    /// Panics if the registry mutex was poisoned (a recorder panicked).
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.inner.as_ref().map(|inner| {
            Arc::clone(
                inner
                    .counters
                    .lock()
                    .expect("telemetry mutex poisoned")
                    .entry(name.to_string())
                    .or_default(),
            )
        }))
    }

    /// Returns the power-of-two-bucket histogram named `name`, creating
    /// it empty on first use.
    ///
    /// # Panics
    ///
    /// Panics if the registry mutex was poisoned (a recorder panicked).
    #[must_use]
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram(self.inner.as_ref().map(|inner| {
            Arc::clone(
                inner
                    .histograms
                    .lock()
                    .expect("telemetry mutex poisoned")
                    .entry(name.to_string())
                    .or_default(),
            )
        }))
    }

    /// Opens a top-level wall-time span. The measurement is recorded
    /// under `path` when the guard drops. Nest with [`SpanGuard::child`].
    #[must_use]
    pub fn span(&self, path: &str) -> SpanGuard {
        SpanGuard {
            inner: self.inner.clone(),
            path: self.inner.as_ref().map(|_| path.to_string()),
            start: Instant::now(),
        }
    }

    /// Captures the deterministic plane — counters and histograms, never
    /// spans — as a versioned flat snapshot.
    ///
    /// A disabled registry snapshots to just the version header.
    ///
    /// # Panics
    ///
    /// Panics if a registry mutex was poisoned (a recorder panicked).
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut values: BTreeMap<String, u64> = BTreeMap::new();
        if let Some(inner) = &self.inner {
            for (name, cell) in inner
                .counters
                .lock()
                .expect("telemetry mutex poisoned")
                .iter()
            {
                values.insert(name.clone(), cell.load(Ordering::Relaxed));
            }
            for (name, hist) in inner
                .histograms
                .lock()
                .expect("telemetry mutex poisoned")
                .iter()
            {
                let mut total = 0u64;
                for (k, bucket) in hist.buckets.iter().enumerate() {
                    let count = bucket.load(Ordering::Relaxed);
                    total += count;
                    if count > 0 {
                        values.insert(format!("{name}/p2_{k:02}"), count);
                    }
                }
                values.insert(format!("{name}/count"), total);
            }
        }
        MetricsSnapshot { values }
    }

    /// Exports the timing plane (spans) as flat JSON:
    /// `"<path>/count"` and `"<path>/total_ns"` per span path. Kept
    /// deliberately separate from [`Registry::snapshot`] — wall time must
    /// never enter a byte-stable digest.
    ///
    /// # Panics
    ///
    /// Panics if the span mutex was poisoned (a recorder panicked).
    #[must_use]
    pub fn timing_json(&self) -> String {
        let mut out = String::from("{\n");
        let mut first = true;
        if let Some(inner) = &self.inner {
            for (path, stat) in inner.spans.lock().expect("telemetry mutex poisoned").iter() {
                if !first {
                    out.push_str(",\n");
                }
                first = false;
                let total = u64::try_from(stat.total_ns).unwrap_or(u64::MAX);
                out.push_str(&format!(
                    "  \"{path}/count\": {},\n  \"{path}/total_ns\": {total}",
                    stat.count
                ));
            }
        }
        if !first {
            out.push('\n');
        }
        out.push_str("}\n");
        out
    }
}

/// A monotonic event counter. Disabled handles are a `None` and cost one
/// always-predicted branch per call.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A standalone no-op counter (what a disabled registry hands out).
    #[must_use]
    pub fn noop() -> Self {
        Counter(None)
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a disabled handle).
    #[must_use]
    pub fn value(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }

    /// Whether increments are recorded anywhere.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }
}

/// A power-of-two-bucket histogram of `u64` values.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<HistogramInner>>);

impl Histogram {
    /// A standalone no-op histogram.
    #[must_use]
    pub fn noop() -> Self {
        Histogram(None)
    }

    /// Records one observation of `value` into its power-of-two bucket.
    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(inner) = &self.0 {
            let bucket = match value {
                0 => 0,
                // `u64::MAX` has zero leading zeros, giving index 64 — the
                // last of the `HISTOGRAM_BUCKETS` slots. The clamp keeps
                // the indexing in-bounds by construction rather than by
                // arithmetic coincidence, so a future bucket-count change
                // saturates instead of panicking.
                v => (64 - v.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1),
            };
            inner.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Whether observations are recorded anywhere.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }
}

/// RAII wall-time span. Records `(count, total_ns)` under its path when
/// dropped. Spans belong to the timing plane only — see the module docs.
#[derive(Debug)]
pub struct SpanGuard {
    inner: Option<Arc<Inner>>,
    /// `Some` exactly when `inner` is; kept separate so a disabled guard
    /// allocates nothing.
    path: Option<String>,
    start: Instant,
}

impl SpanGuard {
    /// Opens a nested span `"<parent>/<name>"` under this one. Nesting
    /// is purely lexical (slash-joined paths), so it needs no global
    /// stack and works across threads.
    #[must_use]
    pub fn child(&self, name: &str) -> SpanGuard {
        SpanGuard {
            inner: self.inner.clone(),
            path: self.path.as_ref().map(|p| format!("{p}/{name}")),
            start: Instant::now(),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let (Some(inner), Some(path)) = (&self.inner, &self.path) {
            let elapsed = self.start.elapsed().as_nanos();
            let mut spans = inner.spans.lock().expect("telemetry mutex poisoned");
            let stat = spans.entry(path.clone()).or_default();
            stat.count += 1;
            stat.total_ns += elapsed;
        }
    }
}

/// A point-in-time capture of the deterministic plane: a sorted flat map
/// of metric names to integer values. Histogram buckets appear as
/// `"<name>/p2_<k>"` entries (non-empty buckets only) plus a
/// `"<name>/count"` total.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    values: BTreeMap<String, u64>,
}

impl MetricsSnapshot {
    /// An empty snapshot (what a disabled registry produces).
    #[must_use]
    pub fn empty() -> Self {
        MetricsSnapshot {
            values: BTreeMap::new(),
        }
    }

    /// The value recorded under `name`, if present.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<u64> {
        self.values.get(name).copied()
    }

    /// The value recorded under `name`, defaulting to zero.
    #[must_use]
    pub fn value(&self, name: &str) -> u64 {
        self.get(name).unwrap_or(0)
    }

    /// Iterates `(name, value)` pairs in sorted name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.values.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Number of entries (version header excluded).
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the snapshot carries no metrics.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Serializes as versioned flat JSON — the version header first,
    /// then one `"name": value` line per metric in sorted order. The
    /// output is byte-deterministic for equal snapshots.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"{VERSION_KEY}\": {SNAPSHOT_VERSION}"));
        for (name, value) in &self.values {
            out.push_str(&format!(",\n  \"{name}\": {value}"));
        }
        out.push_str("\n}\n");
        out
    }

    /// Parses the format written by [`MetricsSnapshot::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line, an unsupported
    /// version, or a missing version header.
    pub fn parse_json(text: &str) -> Result<Self, String> {
        let body = text
            .trim()
            .strip_prefix('{')
            .and_then(|s| s.strip_suffix('}'))
            .ok_or("expected a JSON object")?;
        let mut values = BTreeMap::new();
        let mut version: Option<u64> = None;
        for entry in body.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (name, value) = entry
                .split_once(':')
                .ok_or_else(|| format!("malformed entry {entry:?}"))?;
            let name = name
                .trim()
                .strip_prefix('"')
                .and_then(|s| s.strip_suffix('"'))
                .ok_or_else(|| format!("unquoted key in {entry:?}"))?;
            let value: u64 = value
                .trim()
                .parse()
                .map_err(|_| format!("non-integer value in {entry:?}"))?;
            if name == VERSION_KEY {
                version = Some(value);
            } else {
                values.insert(name.to_string(), value);
            }
        }
        match version {
            Some(SNAPSHOT_VERSION) => Ok(MetricsSnapshot { values }),
            Some(v) => Err(format!("unsupported snapshot version {v}")),
            None => Err("missing version header".to_string()),
        }
    }

    /// FNV-1a fingerprint of the serialized snapshot. Because spans never
    /// enter a snapshot, this digest is a pure function of the counted
    /// work — safe to compare across runs, machines, and thread counts.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in self.to_json().as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share_cells() {
        let registry = Registry::enabled();
        let a = registry.counter("alg.pops");
        let b = registry.counter("alg.pops");
        a.inc();
        b.add(4);
        assert_eq!(a.value(), 5, "same name must share one cell");
        assert_eq!(registry.snapshot().value("alg.pops"), 5);
    }

    #[test]
    fn disabled_registry_is_a_noop() {
        let registry = Registry::disabled();
        assert!(!registry.is_enabled());
        let c = registry.counter("x");
        c.inc();
        assert!(!c.is_enabled());
        assert_eq!(c.value(), 0);
        let h = registry.histogram("y");
        h.record(9);
        assert!(!h.is_enabled());
        let snap = registry.snapshot();
        assert!(snap.is_empty());
        // Still a valid versioned document.
        assert_eq!(MetricsSnapshot::parse_json(&snap.to_json()).unwrap(), snap);
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        let registry = Registry::enabled();
        let h = registry.histogram("footprint");
        for v in [0, 1, 2, 3, 4, 7, 8, 1024] {
            h.record(v);
        }
        let snap = registry.snapshot();
        assert_eq!(snap.value("footprint/count"), 8);
        assert_eq!(snap.value("footprint/p2_00"), 1, "value 0");
        assert_eq!(snap.value("footprint/p2_01"), 1, "value 1");
        assert_eq!(snap.value("footprint/p2_02"), 2, "values 2..4");
        assert_eq!(snap.value("footprint/p2_03"), 2, "values 4..8");
        assert_eq!(snap.value("footprint/p2_04"), 1, "value 8");
        assert_eq!(snap.value("footprint/p2_11"), 1, "value 1024");
    }

    /// The top of the `u64` range lands in the last bucket (index 64)
    /// without indexing past `HISTOGRAM_BUCKETS`. Pins the exact bucket
    /// for the `2^63` boundary on both sides and for `u64::MAX`.
    #[test]
    fn histogram_top_buckets_stay_in_bounds() {
        let registry = Registry::enabled();
        let h = registry.histogram("top");
        h.record((1u64 << 63) - 1); // largest 63-bit value
        h.record(1u64 << 63); // smallest 64-bit value
        h.record(u64::MAX);
        let snap = registry.snapshot();
        assert_eq!(snap.value("top/count"), 3);
        assert_eq!(snap.value("top/p2_63"), 1, "2^63 - 1");
        assert_eq!(snap.value("top/p2_64"), 2, "2^63 and u64::MAX share the last bucket");
    }

    #[test]
    fn snapshot_round_trips_and_digest_is_stable() {
        let registry = Registry::enabled();
        registry.counter("b").add(2);
        registry.counter("a").add(1);
        registry.histogram("h").record(3);
        let snap = registry.snapshot();
        let parsed = MetricsSnapshot::parse_json(&snap.to_json()).unwrap();
        assert_eq!(parsed, snap);
        assert_eq!(parsed.digest(), snap.digest());
        // Keys serialize sorted regardless of creation order.
        let json = snap.to_json();
        let a = json.find("\"a\"").unwrap();
        let b = json.find("\"b\"").unwrap();
        assert!(a < b, "snapshot keys must be sorted");
    }

    #[test]
    fn parse_rejects_bad_documents() {
        assert!(MetricsSnapshot::parse_json("not json").is_err());
        assert!(
            MetricsSnapshot::parse_json("{\n  \"a\": 1\n}\n").is_err(),
            "missing version header must be rejected"
        );
        assert!(
            MetricsSnapshot::parse_json(&format!("{{\"{VERSION_KEY}\": 999, \"a\": 1}}")).is_err(),
            "unknown version must be rejected"
        );
        assert!(MetricsSnapshot::parse_json(&format!(
            "{{\"{VERSION_KEY}\": {SNAPSHOT_VERSION}, \"a\": -3}}"
        ))
        .is_err());
    }

    #[test]
    fn spans_stay_out_of_the_deterministic_plane() {
        let registry = Registry::enabled();
        {
            let outer = registry.span("replay");
            let _inner = outer.child("admit");
            registry.counter("events").inc();
        }
        let snap = registry.snapshot();
        assert_eq!(snap.len(), 1, "only the counter may appear: {snap:?}");
        assert_eq!(snap.value("events"), 1);
        let timing = registry.timing_json();
        assert!(timing.contains("replay/count"));
        assert!(timing.contains("replay/admit/total_ns"));
    }

    #[test]
    fn snapshots_compare_independent_of_wall_time() {
        // Two registries doing identical counted work but very different
        // span activity must snapshot byte-identically.
        let run = |spans: usize| {
            let registry = Registry::enabled();
            for _ in 0..spans {
                let _g = registry.span("noise");
            }
            registry.counter("work").add(7);
            registry.histogram("sizes").record(5);
            registry.snapshot()
        };
        let a = run(0);
        let b = run(100);
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.digest(), b.digest());
    }
}
