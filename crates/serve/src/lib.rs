//! `fusion-serve`: the online demand engine over the paper's routing
//! pipeline.
//!
//! The batch crates answer "given all demands up front, what is the best
//! plan?" This crate answers the operational question: demands *arrive
//! and depart*, and each arrival must be routed against whatever capacity
//! the live sessions have left. The pieces:
//!
//! * [`ledger`] — [`ResidualLedger`], the exact per-node qubit / per-edge
//!   channel bookkeeping, with all-or-nothing charge/release and an
//!   audit against the live plan set.
//! * [`state`] — [`ServiceState`], the epoch-versioned engine:
//!   [`admit`](ServiceState::admit) routes one demand with the batch
//!   width-descent pipeline restricted to the residual capacity,
//!   [`depart`](ServiceState::depart) returns capacity exactly, and
//!   [`fail_link`](ServiceState::fail_link) evicts plans crossing a cut
//!   fiber.
//! * [`cache`] — the per-demand candidate cache behind
//!   `AdmitStrategy::Incremental` (the default): Algorithm 2 candidate
//!   sets keyed by (pair, width), invalidated by read footprint ×
//!   feasibility flip-band as ledger deltas stream through.
//!   `AdmitStrategy::FromScratch` keeps the uncached admission path as
//!   the reference.
//! * [`trace`] — seeded deterministic trace generation (Poisson
//!   arrivals, exponential holding times, optional link-downs, optional
//!   recurring-demand user pool).
//! * [`mod@replay`] — the replay loop, producing a byte-stable event log
//!   and aggregate statistics.
//! * [`mod@presets`] — named world presets mirroring the batch
//!   experiments.
//!
//! The correctness story is two equivalence oracles
//! (see `docs/ARCHITECTURE.md` at the repo root for the discipline):
//!
//! 1. *Residual-capacity equivalence* (`tests/service_oracle.rs`):
//!    admitting against the ledger is proved byte-identical —
//!    candidates, merge outcome, and finished plan — to running the
//!    batch pipeline on a network whose capacities were pre-reduced by
//!    the live plans, and depart ∘ admit is proved to restore the
//!    ledger exactly.
//! 2. *Incremental equivalence* (`tests/incremental_oracle.rs`): the
//!    cached admission path is proved byte-identical to from-scratch
//!    admission at every event of random admit/depart/link-down traces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod ledger;
pub mod presets;
pub mod replay;
pub mod state;
pub mod trace;

pub use cache::CacheCounters;
pub use ledger::{LedgerError, ResidualLedger};
pub use presets::{presets, resolve_preset, ServePreset};
pub use replay::{replay, ReplayOptions, ReplayReport, ReplayStats};
pub use state::{AdmitOutcome, LivePlan, PlanId, RejectReason, ServiceState, StateDigest};
pub use trace::{generate, Trace, TraceConfig, TraceEvent, TraceEventKind};
