//! Q-CAST baseline (§V-B): "a special version of ALG-N-FUSION where N = 2".
//!
//! Switches perform classic BSM swapping: one shared state rides one
//! pre-committed lane (one link per hop, one BSM per switch), so routes
//! are single width-1 paths — extra width only serves other states and
//! Q-CAST routes one major path per request \[17\]. Path quality is the
//! paper's classic rate `p^z · q^(z-1)` (see
//! `fusion_core::metrics::classic`).

use crate::algorithms::pipeline::{route, RoutingConfig};
use crate::demand::Demand;
use crate::network::QuantumNetwork;
use crate::plan::NetworkPlan;

/// Routes all demands under classic swapping with `h` candidate paths per
/// (demand, width).
#[must_use]
pub fn route_qcast(net: &QuantumNetwork, demands: &[Demand], h: usize) -> NetworkPlan {
    let config = RoutingConfig {
        h,
        max_width: Some(1),
        ..RoutingConfig::classic()
    };
    route(net, demands, &config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkParams;
    use crate::plan::SwapMode;
    use fusion_topology::TopologyConfig;

    fn setup() -> (QuantumNetwork, Vec<Demand>) {
        let topo = TopologyConfig {
            num_switches: 30,
            num_user_pairs: 5,
            avg_degree: 6.0,
            ..TopologyConfig::default()
        }
        .generate(7);
        let net = QuantumNetwork::from_topology(&topo, &NetworkParams::default());
        (net, Demand::from_topology(&topo))
    }

    #[test]
    fn produces_classic_plan() {
        let (net, demands) = setup();
        let plan = route_qcast(&net, &demands, 5);
        assert_eq!(plan.mode, SwapMode::Classic);
        assert!(plan.total_rate(&net) > 0.0);
    }

    #[test]
    fn one_width_one_path_per_demand() {
        let (net, demands) = setup();
        let plan = route_qcast(&net, &demands, 5);
        for dp in &plan.plans {
            assert!(
                dp.paths.len() <= 1,
                "Q-CAST routes one major path per request"
            );
            for wp in &dp.paths {
                assert!(
                    wp.widths.iter().all(|&w| w == 1),
                    "classic states ride one lane"
                );
            }
        }
    }

    #[test]
    fn classic_paths_never_share_hops_within_a_demand() {
        let (net, demands) = setup();
        let plan = route_qcast(&net, &demands, 5);
        // Under BSM the merge step must not have fused paths: qubit spend
        // equals the sum over paths of per-hop widths.
        for node in net.graph().node_ids().filter(|&v| net.is_switch(v)) {
            let mut spent: u32 = 0;
            for dp in &plan.plans {
                for wp in &dp.paths {
                    for (u, v, w) in wp.hops() {
                        if u == node || v == node {
                            spent += w;
                        }
                    }
                }
            }
            assert!(
                spent <= net.capacity(node),
                "classic plan oversubscribes switch {node}"
            );
        }
    }
}
