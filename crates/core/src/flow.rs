use std::collections::{BTreeMap, BTreeSet};

use fusion_graph::{NodeId, Path};
use serde::{Deserialize, Serialize};

/// A loopless path annotated with a per-hop channel width.
///
/// Algorithm 2 emits uniform-width paths; Algorithm 4 may widen individual
/// hops afterwards, so widths are stored per hop.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WidthedPath {
    /// The node sequence.
    pub path: Path,
    /// Channel width of each hop; `widths.len() == path.hops()`.
    pub widths: Vec<u32>,
}

impl WidthedPath {
    /// Wraps a path with the same width on every hop.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or the path is trivial.
    #[must_use]
    pub fn uniform(path: Path, width: u32) -> Self {
        assert!(width > 0, "width must be positive");
        assert!(!path.is_trivial(), "a routed path needs at least one hop");
        let widths = vec![width; path.hops()];
        WidthedPath { path, widths }
    }

    /// Width of hop `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn width(&self, i: usize) -> u32 {
        self.widths[i]
    }

    /// Iterates `(u, v, width)` over the hops.
    pub fn hops(&self) -> impl Iterator<Item = (NodeId, NodeId, u32)> + '_ {
        self.path
            .hops_iter()
            .zip(self.widths.iter())
            .map(|((u, v), &w)| (u, v, w))
    }

    /// Increments the width of hop `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn widen_hop(&mut self, i: usize) {
        self.widths[i] += 1;
    }
}

/// A flow-like graph (paper Definition 1): the union of one demand's routed
/// paths, oriented from the source user to the destination user, with a
/// channel width per directed edge.
///
/// Paths sharing an edge for the same quantum state share its qubits, so
/// merging paths into a flow-like graph is how n-fusion saves resources
/// (§IV-B idea 1).
///
/// # Examples
///
/// ```
/// use fusion_core::FlowGraph;
/// use fusion_graph::{NodeId, Path};
///
/// let n: Vec<NodeId> = (0..4).map(NodeId::new).collect();
/// let mut flow = FlowGraph::new(n[0], n[3]);
/// flow.add_path(&Path::new(vec![n[0], n[1], n[3]]), 2);
/// flow.add_path(&Path::new(vec![n[0], n[2], n[3]]), 1);
/// assert_eq!(flow.edge_width(n[0], n[1]), Some(2));
/// assert_eq!(flow.branch_nodes().len(), 1); // n0 branches
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowGraph {
    source: NodeId,
    sink: NodeId,
    edges: BTreeMap<(NodeId, NodeId), u32>,
}

impl FlowGraph {
    /// Creates an empty flow-like graph between two users.
    ///
    /// # Panics
    ///
    /// Panics if `source == sink`.
    #[must_use]
    pub fn new(source: NodeId, sink: NodeId) -> Self {
        assert_ne!(source, sink, "flow graph needs two distinct endpoints");
        FlowGraph {
            source,
            sink,
            edges: BTreeMap::new(),
        }
    }

    /// The source user.
    #[must_use]
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// The destination user.
    #[must_use]
    pub fn sink(&self) -> NodeId {
        self.sink
    }

    /// `true` if no path has been added yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Number of directed edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds a path oriented source → sink. Edges already present in either
    /// orientation keep their existing width (the new path shares those
    /// qubits; §IV-C Algorithm 3), new edges get `width`.
    ///
    /// # Panics
    ///
    /// Panics if the path does not run from source to sink or `width == 0`.
    pub fn add_path(&mut self, path: &Path, width: u32) {
        assert!(width > 0, "width must be positive");
        assert_eq!(
            path.source(),
            self.source,
            "path must start at the flow source"
        );
        assert_eq!(
            path.destination(),
            self.sink,
            "path must end at the flow sink"
        );
        for (u, v) in path.hops_iter() {
            if self.edges.contains_key(&(u, v)) || self.edges.contains_key(&(v, u)) {
                continue;
            }
            self.edges.insert((u, v), width);
        }
    }

    /// Width of the directed edge `(u, v)`, if present.
    #[must_use]
    pub fn edge_width(&self, u: NodeId, v: NodeId) -> Option<u32> {
        self.edges.get(&(u, v)).copied()
    }

    /// Width of the edge between `u` and `v` in either orientation.
    #[must_use]
    pub fn undirected_width(&self, u: NodeId, v: NodeId) -> Option<u32> {
        self.edge_width(u, v).or_else(|| self.edge_width(v, u))
    }

    /// Adds `width` parallel links between `u` and `v`: sums with an
    /// existing edge in either orientation, otherwise inserts the directed
    /// edge `(u, v)`. Used when re-evaluating independently-resourced paths
    /// (Q-CAST-N) whose widths stack rather than share.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn add_parallel(&mut self, u: NodeId, v: NodeId, width: u32) {
        assert!(width > 0, "width must be positive");
        for key in [(u, v), (v, u)] {
            if let Some(w) = self.edges.get_mut(&key) {
                *w += width;
                return;
            }
        }
        self.edges.insert((u, v), width);
    }

    /// Increments the width of the edge between `u` and `v` (either
    /// orientation). Returns `true` if the edge existed.
    pub fn widen(&mut self, u: NodeId, v: NodeId) -> bool {
        for key in [(u, v), (v, u)] {
            if let Some(w) = self.edges.get_mut(&key) {
                *w += 1;
                return true;
            }
        }
        false
    }

    /// Iterates all directed edges as `(u, v, width)` in deterministic
    /// order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, u32)> + '_ {
        self.edges.iter().map(|(&(u, v), &w)| (u, v, w))
    }

    /// Iterates the children (out-neighbors) of `node` with widths.
    pub fn children(&self, node: NodeId) -> impl Iterator<Item = (NodeId, u32)> + '_ {
        self.edges
            .range((node, NodeId::new(0))..=(node, NodeId::new(usize::MAX)))
            .map(|(&(_, v), &w)| (v, w))
    }

    /// Every node referenced by some edge, in ascending order.
    #[must_use]
    pub fn nodes(&self) -> Vec<NodeId> {
        let mut set = BTreeSet::new();
        for &(u, v) in self.edges.keys() {
            set.insert(u);
            set.insert(v);
        }
        set.into_iter().collect()
    }

    /// Nodes with more than one child: the branch nodes of Definition 1.
    #[must_use]
    pub fn branch_nodes(&self) -> Vec<NodeId> {
        let mut out_degree: BTreeMap<NodeId, usize> = BTreeMap::new();
        for &(u, _) in self.edges.keys() {
            *out_degree.entry(u).or_insert(0) += 1;
        }
        out_degree
            .into_iter()
            .filter(|&(_, d)| d > 1)
            .map(|(n, _)| n)
            .collect()
    }

    /// Total qubits this flow graph consumes at `node`: the sum of widths of
    /// incident edges (each link end pins one qubit).
    #[must_use]
    pub fn qubits_at(&self, node: NodeId) -> u32 {
        self.edges
            .iter()
            .filter(|(&(u, v), _)| u == node || v == node)
            .map(|(_, &w)| w)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: usize) -> Vec<NodeId> {
        (0..n).map(NodeId::new).collect()
    }

    #[test]
    fn widthed_path_uniform() {
        let n = ids(3);
        let wp = WidthedPath::uniform(Path::new(vec![n[0], n[1], n[2]]), 3);
        assert_eq!(wp.widths, vec![3, 3]);
        assert_eq!(wp.width(1), 3);
        let hops: Vec<_> = wp.hops().collect();
        assert_eq!(hops, vec![(n[0], n[1], 3), (n[1], n[2], 3)]);
    }

    #[test]
    fn widthed_path_widen_hop() {
        let n = ids(3);
        let mut wp = WidthedPath::uniform(Path::new(vec![n[0], n[1], n[2]]), 1);
        wp.widen_hop(0);
        assert_eq!(wp.widths, vec![2, 1]);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn widthed_path_rejects_zero_width() {
        let n = ids(2);
        let _ = WidthedPath::uniform(Path::new(vec![n[0], n[1]]), 0);
    }

    #[test]
    fn add_path_keeps_existing_widths() {
        let n = ids(4);
        let mut flow = FlowGraph::new(n[0], n[3]);
        flow.add_path(&Path::new(vec![n[0], n[1], n[3]]), 3);
        // The second path shares (0,1) and must not overwrite its width.
        flow.add_path(&Path::new(vec![n[0], n[1], n[2], n[3]]), 1);
        assert_eq!(flow.edge_width(n[0], n[1]), Some(3));
        assert_eq!(flow.edge_width(n[1], n[2]), Some(1));
        assert_eq!(flow.edge_count(), 4);
    }

    #[test]
    fn children_and_branches() {
        let n = ids(4);
        let mut flow = FlowGraph::new(n[0], n[3]);
        flow.add_path(&Path::new(vec![n[0], n[1], n[3]]), 2);
        flow.add_path(&Path::new(vec![n[0], n[2], n[3]]), 2);
        let kids: Vec<_> = flow.children(n[0]).collect();
        assert_eq!(kids, vec![(n[1], 2), (n[2], 2)]);
        assert_eq!(flow.branch_nodes(), vec![n[0]]);
        assert!(flow.children(n[3]).next().is_none());
    }

    #[test]
    fn widen_both_orientations() {
        let n = ids(3);
        let mut flow = FlowGraph::new(n[0], n[2]);
        flow.add_path(&Path::new(vec![n[0], n[1], n[2]]), 1);
        assert!(flow.widen(n[1], n[0]), "reverse orientation must match");
        assert_eq!(flow.edge_width(n[0], n[1]), Some(2));
        assert!(!flow.widen(n[0], n[2]), "absent edge is reported");
        assert_eq!(flow.undirected_width(n[2], n[1]), Some(1));
    }

    #[test]
    fn qubit_accounting() {
        let n = ids(4);
        let mut flow = FlowGraph::new(n[0], n[3]);
        flow.add_path(&Path::new(vec![n[0], n[1], n[3]]), 2);
        flow.add_path(&Path::new(vec![n[0], n[2], n[3]]), 1);
        // Node 0 touches edges of width 2 and 1.
        assert_eq!(flow.qubits_at(n[0]), 3);
        assert_eq!(flow.qubits_at(n[1]), 4);
        assert_eq!(flow.qubits_at(n[2]), 2);
    }

    #[test]
    fn nodes_listed_once() {
        let n = ids(4);
        let mut flow = FlowGraph::new(n[0], n[3]);
        flow.add_path(&Path::new(vec![n[0], n[1], n[3]]), 1);
        flow.add_path(&Path::new(vec![n[0], n[2], n[3]]), 1);
        assert_eq!(flow.nodes(), n);
    }

    #[test]
    #[should_panic(expected = "must start at the flow source")]
    fn add_path_checks_endpoints() {
        let n = ids(4);
        let mut flow = FlowGraph::new(n[0], n[3]);
        flow.add_path(&Path::new(vec![n[1], n[3]]), 1);
    }
}
