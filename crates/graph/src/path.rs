use std::collections::HashSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::graph::{NodeId, UnGraph};

/// Errors produced when validating a [`Path`] against a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathError {
    /// The node sequence was empty.
    Empty,
    /// The same node appeared twice (paths must be loopless).
    RepeatedNode(NodeId),
    /// Two consecutive nodes are not adjacent in the graph.
    MissingEdge(NodeId, NodeId),
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathError::Empty => write!(f, "path has no nodes"),
            PathError::RepeatedNode(n) => write!(f, "node {n} repeats in path"),
            PathError::MissingEdge(u, v) => write!(f, "no edge between {u} and {v}"),
        }
    }
}

impl std::error::Error for PathError {}

/// A loopless node sequence through a graph.
///
/// `Path` is the common currency between the routing algorithms: Algorithm 1
/// emits one, Algorithm 2 collects many, Algorithm 3 merges them into
/// flow-like graphs.
///
/// # Examples
///
/// ```
/// use fusion_graph::{Path, UnGraph};
///
/// let mut g: UnGraph<(), ()> = UnGraph::new();
/// let a = g.add_node(());
/// let b = g.add_node(());
/// g.add_edge(a, b, ());
///
/// let p = Path::validated(vec![a, b], &g)?;
/// assert_eq!(p.hops(), 1);
/// assert_eq!(p.source(), a);
/// assert_eq!(p.destination(), b);
/// # Ok::<(), fusion_graph::PathError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Path {
    nodes: Vec<NodeId>,
}

impl Path {
    /// Creates a path from a node sequence without validating it against a
    /// graph. The sequence must be non-empty and loopless.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty or contains a repeated node.
    #[must_use]
    pub fn new(nodes: Vec<NodeId>) -> Self {
        assert!(!nodes.is_empty(), "path must contain at least one node");
        let mut seen = HashSet::with_capacity(nodes.len());
        for &n in &nodes {
            assert!(seen.insert(n), "node {n} repeats in path");
        }
        Path { nodes }
    }

    /// Creates a path and validates that consecutive nodes are adjacent in
    /// `graph`.
    ///
    /// # Errors
    ///
    /// Returns [`PathError`] if the sequence is empty, repeats a node, or
    /// skips over a missing edge.
    pub fn validated<N, E>(nodes: Vec<NodeId>, graph: &UnGraph<N, E>) -> Result<Self, PathError> {
        if nodes.is_empty() {
            return Err(PathError::Empty);
        }
        let mut seen = HashSet::with_capacity(nodes.len());
        for &n in &nodes {
            if !seen.insert(n) {
                return Err(PathError::RepeatedNode(n));
            }
        }
        for w in nodes.windows(2) {
            if !graph.contains_edge(w[0], w[1]) {
                return Err(PathError::MissingEdge(w[0], w[1]));
            }
        }
        Ok(Path { nodes })
    }

    /// The nodes of the path in order.
    #[must_use]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// First node.
    #[must_use]
    pub fn source(&self) -> NodeId {
        self.nodes[0]
    }

    /// Last node.
    #[must_use]
    pub fn destination(&self) -> NodeId {
        *self.nodes.last().expect("path is non-empty")
    }

    /// Number of hops (edges); a single-node path has zero hops.
    #[must_use]
    pub fn hops(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Always `false`: a path holds at least one node by construction.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `true` when the path is a single node.
    #[must_use]
    pub fn is_trivial(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Iterates over consecutive node pairs `(u, v)`.
    pub fn hops_iter(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes.windows(2).map(|w| (w[0], w[1]))
    }

    /// The intermediate nodes (everything except the two endpoints).
    #[must_use]
    pub fn intermediates(&self) -> &[NodeId] {
        if self.nodes.len() <= 2 {
            &[]
        } else {
            &self.nodes[1..self.nodes.len() - 1]
        }
    }

    /// `true` if the path traverses the undirected hop `{u, v}`.
    #[must_use]
    pub fn contains_hop(&self, u: NodeId, v: NodeId) -> bool {
        self.hops_iter()
            .any(|(a, b)| (a == u && b == v) || (a == v && b == u))
    }

    /// `true` if the path visits `node`.
    #[must_use]
    pub fn contains_node(&self, node: NodeId) -> bool {
        self.nodes.contains(&node)
    }

    /// Concatenates a root segment with a continuation that starts at the
    /// root's last node, as in Yen's algorithm.
    ///
    /// # Panics
    ///
    /// Panics if `tail` does not start where `self` ends, or if the joined
    /// sequence repeats a node.
    #[must_use]
    pub fn join(&self, tail: &Path) -> Path {
        assert_eq!(
            self.destination(),
            tail.source(),
            "tail must start at the root's destination"
        );
        let mut nodes = self.nodes.clone();
        nodes.extend_from_slice(&tail.nodes[1..]);
        Path::new(nodes)
    }

    /// The prefix of this path up to and including index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn prefix(&self, i: usize) -> Path {
        Path {
            nodes: self.nodes[..=i].to_vec(),
        }
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for n in &self.nodes {
            if !first {
                write!(f, "-")?;
            }
            write!(f, "{n}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line() -> (UnGraph<(), ()>, Vec<NodeId>) {
        let mut g = UnGraph::new();
        let ids: Vec<_> = (0..4).map(|_| g.add_node(())).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], ());
        }
        (g, ids)
    }

    #[test]
    fn validated_accepts_line() {
        let (g, ids) = line();
        let p = Path::validated(ids.clone(), &g).unwrap();
        assert_eq!(p.hops(), 3);
        assert_eq!(p.len(), 4);
        assert_eq!(p.source(), ids[0]);
        assert_eq!(p.destination(), ids[3]);
        assert_eq!(p.intermediates(), &ids[1..3]);
    }

    #[test]
    fn validated_rejects_empty() {
        let (g, _) = line();
        assert_eq!(Path::validated(vec![], &g), Err(PathError::Empty));
    }

    #[test]
    fn validated_rejects_repeat() {
        let (g, ids) = line();
        let seq = vec![ids[0], ids[1], ids[0]];
        assert_eq!(
            Path::validated(seq, &g),
            Err(PathError::RepeatedNode(ids[0]))
        );
    }

    #[test]
    fn validated_rejects_missing_edge() {
        let (g, ids) = line();
        let seq = vec![ids[0], ids[2]];
        assert_eq!(
            Path::validated(seq, &g),
            Err(PathError::MissingEdge(ids[0], ids[2]))
        );
    }

    #[test]
    fn hop_queries() {
        let (g, ids) = line();
        let p = Path::validated(ids.clone(), &g).unwrap();
        assert!(p.contains_hop(ids[1], ids[2]));
        assert!(p.contains_hop(ids[2], ids[1]));
        assert!(!p.contains_hop(ids[0], ids[2]));
        assert!(p.contains_node(ids[3]));
        assert_eq!(p.hops_iter().count(), 3);
    }

    #[test]
    fn join_and_prefix() {
        let (_, ids) = line();
        let root = Path::new(vec![ids[0], ids[1]]);
        let tail = Path::new(vec![ids[1], ids[2], ids[3]]);
        let joined = root.join(&tail);
        assert_eq!(joined.nodes(), &ids[..]);
        assert_eq!(joined.prefix(1).nodes(), &ids[..2]);
    }

    #[test]
    #[should_panic(expected = "tail must start")]
    fn join_rejects_disconnected_tail() {
        let (_, ids) = line();
        let root = Path::new(vec![ids[0], ids[1]]);
        let tail = Path::new(vec![ids[2], ids[3]]);
        let _ = root.join(&tail);
    }

    #[test]
    fn trivial_path() {
        let (_, ids) = line();
        let p = Path::new(vec![ids[0]]);
        assert!(p.is_trivial());
        assert_eq!(p.hops(), 0);
        assert!(p.intermediates().is_empty());
    }

    #[test]
    fn display_joins_nodes() {
        let (_, ids) = line();
        let p = Path::new(vec![ids[0], ids[1]]);
        assert_eq!(p.to_string(), "n0-n1");
    }
}
