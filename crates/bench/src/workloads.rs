//! Default experiment configuration (paper §V-A) and algorithm runners.

use fusion_core::algorithms::{route_with_capacity_counted, RoutingConfig};
use fusion_core::baselines::{route_b1, route_qcast, route_qcast_n, DEFAULT_REGION_PATHS};
use fusion_core::{Demand, NetworkParams, NetworkPlan, PhysicsParams, QuantumNetwork};
use fusion_sim::evaluate::{estimate_plan_counted, McCounters};
use fusion_telemetry::Registry;
use fusion_topology::{GeneratorKind, TopologyConfig};

/// One experiment instance: everything needed to generate networks and
/// route demands. Field defaults mirror §V-A.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Topology generation parameters (100 switches, degree 10, 20 states,
    /// 10k × 10k area by default).
    pub topology: TopologyConfig,
    /// Switch capacity and physics (capacity 10, q = 0.9, α = 1e-4).
    pub network: NetworkParams,
    /// Networks generated and averaged per data point (paper: 5).
    pub networks: usize,
    /// Candidate paths per (demand, width) for Algorithm 2.
    pub h: usize,
    /// Monte Carlo rounds per (network, demand) when estimating rates
    /// empirically; `0` reports analytic rates instead.
    pub mc_rounds: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Worker threads for routing and Monte Carlo estimation; `1` keeps
    /// the historical fully-serial behaviour (and its RNG streams), `0`
    /// means "all available cores". The scale presets default to `0`.
    pub threads: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            topology: TopologyConfig::default(),
            network: NetworkParams::default(),
            networks: 5,
            h: 5,
            mc_rounds: 1_500,
            seed: 0x5eed,
            threads: 1,
        }
    }
}

impl ExperimentConfig {
    /// A scaled-down configuration for fast smoke runs and Criterion
    /// benches (30 switches, 6 states, 2 networks).
    #[must_use]
    pub fn quick() -> Self {
        ExperimentConfig {
            topology: TopologyConfig {
                num_switches: 30,
                num_user_pairs: 6,
                avg_degree: 6.0,
                ..TopologyConfig::default()
            },
            networks: 2,
            mc_rounds: 400,
            ..ExperimentConfig::default()
        }
    }

    /// A large-scale preset: `num_switches` switches (Waxman by default,
    /// see [`ExperimentConfig::large_grid`]), 50 demanded states, one
    /// network, h = 3, 200 Monte Carlo rounds, all cores. These settings
    /// keep a 1k-switch end-to-end run in seconds and a 10k-switch run in
    /// minutes; push any knob back up explicitly when you need more.
    #[must_use]
    pub fn large(num_switches: usize) -> Self {
        ExperimentConfig {
            topology: TopologyConfig {
                num_switches,
                num_user_pairs: 50,
                ..TopologyConfig::default()
            },
            networks: 1,
            h: 3,
            mc_rounds: 200,
            threads: 0,
            ..ExperimentConfig::default()
        }
    }

    /// [`ExperimentConfig::large`] on the deterministic grid lattice —
    /// O(n) generation, the reference shape for 5k/10k scale runs.
    #[must_use]
    pub fn large_grid(num_switches: usize) -> Self {
        let mut c = Self::large(num_switches);
        c.topology.kind = GeneratorKind::Grid;
        c
    }

    /// Resolves [`threads`](ExperimentConfig::threads): `0` becomes the
    /// available core count.
    #[must_use]
    pub fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            self.threads
        }
    }

    /// Generates the `i`-th network instance and its demand list.
    #[must_use]
    pub fn instance(&self, i: usize) -> (QuantumNetwork, Vec<Demand>) {
        let topo = self.topology.generate(self.seed.wrapping_add(i as u64));
        let net = QuantumNetwork::from_topology(&topo, &self.network);
        let demands = Demand::from_topology(&topo);
        (net, demands)
    }
}

/// The named large-topology presets exercised by the `figures` binary
/// (`--preset NAME`) and the scale benchmarks.
#[must_use]
pub fn scale_presets() -> Vec<(&'static str, ExperimentConfig)> {
    vec![
        ("large-1k", ExperimentConfig::large(1_000)),
        ("large-1k-grid", ExperimentConfig::large_grid(1_000)),
        ("large-5k", ExperimentConfig::large(5_000)),
        ("large-5k-grid", ExperimentConfig::large_grid(5_000)),
        ("large-10k", ExperimentConfig::large(10_000)),
        ("large-10k-grid", ExperimentConfig::large_grid(10_000)),
    ]
}

/// The named base presets: the paper's §V-A configuration and the
/// scaled-down smoke configuration.
#[must_use]
pub fn base_presets() -> Vec<(&'static str, ExperimentConfig)> {
    vec![
        ("default", ExperimentConfig::default()),
        ("quick", ExperimentConfig::quick()),
    ]
}

/// Every canonical preset name, base presets first then the large-scale
/// ones — the vocabulary sweep specifications are authored against
/// (`sweep list-presets`).
#[must_use]
pub fn preset_names() -> Vec<&'static str> {
    base_presets()
        .iter()
        .map(|(n, _)| *n)
        .chain(scale_presets().iter().map(|(n, _)| *n))
        .collect()
}

/// Resolves a canonical preset name ([`base_presets`] or
/// [`scale_presets`]) to its configuration.
#[must_use]
pub fn resolve_preset(name: &str) -> Option<ExperimentConfig> {
    base_presets()
        .into_iter()
        .chain(scale_presets())
        .find(|(n, _)| *n == name)
        .map(|(_, c)| c)
}

/// The five algorithm variants of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// The paper's ALG-N-FUSION (Algorithms 1-4 under n-fusion).
    AlgNFusion,
    /// Classic-swapping restriction (N = 2).
    QCast,
    /// Q-CAST routes evaluated under n-fusion.
    QCastN,
    /// Patil et al. percolation baseline extended to multiple pairs.
    B1,
    /// ALG-N-FUSION without Algorithm 4 (Fig. 7 ablation).
    Alg3Only,
}

impl Algorithm {
    /// The four algorithms compared in every figure.
    pub const MAIN: [Algorithm; 4] = [
        Algorithm::AlgNFusion,
        Algorithm::QCast,
        Algorithm::QCastN,
        Algorithm::B1,
    ];

    /// All five variants (Fig. 7 adds the Alg-3 ablation).
    pub const ALL: [Algorithm; 5] = [
        Algorithm::AlgNFusion,
        Algorithm::QCast,
        Algorithm::QCastN,
        Algorithm::B1,
        Algorithm::Alg3Only,
    ];

    /// Display name matching the paper's legends.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::AlgNFusion => "ALG-N-FUSION",
            Algorithm::QCast => "Q-CAST",
            Algorithm::QCastN => "Q-CAST-N",
            Algorithm::B1 => "B1",
            Algorithm::Alg3Only => "Alg-3",
        }
    }

    /// Parses a display name ([`Algorithm::name`]) back into the variant.
    /// Case-insensitive; returns `None` for unknown names.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Algorithm> {
        Algorithm::ALL
            .into_iter()
            .find(|a| a.name().eq_ignore_ascii_case(name))
    }

    /// Routes `demands` on `net` with this algorithm.
    #[must_use]
    pub fn route(self, net: &QuantumNetwork, demands: &[Demand], h: usize) -> NetworkPlan {
        self.route_threads(net, demands, h, 1)
    }

    /// [`Algorithm::route`] with candidate construction sharded over
    /// `threads` workers for the pipeline-based algorithms (the plan is
    /// bit-identical to the serial one). The B1 baseline routes demands
    /// sequentially against a running capacity remainder, so it stays
    /// serial regardless.
    #[must_use]
    pub fn route_threads(
        self,
        net: &QuantumNetwork,
        demands: &[Demand],
        h: usize,
        threads: usize,
    ) -> NetworkPlan {
        self.route_threads_counted(net, demands, h, threads, &Registry::disabled())
    }

    /// [`Algorithm::route_threads`] with routing counters recorded into
    /// `registry` for the pipeline-based algorithms. The baselines have no
    /// instrumented variants and route uncounted regardless of `registry`.
    #[must_use]
    pub fn route_threads_counted(
        self,
        net: &QuantumNetwork,
        demands: &[Demand],
        h: usize,
        threads: usize,
        registry: &Registry,
    ) -> NetworkPlan {
        match self {
            Algorithm::AlgNFusion => {
                route_with_capacity_counted(
                    net,
                    demands,
                    &RoutingConfig {
                        h,
                        ..RoutingConfig::n_fusion()
                    },
                    &net.capacities(),
                    threads,
                    registry,
                )
                .plan
            }
            Algorithm::QCast => route_qcast(net, demands, h),
            Algorithm::QCastN => route_qcast_n(net, demands, h),
            Algorithm::B1 => route_b1(net, demands, DEFAULT_REGION_PATHS),
            Algorithm::Alg3Only => {
                route_with_capacity_counted(
                    net,
                    demands,
                    &RoutingConfig {
                        h,
                        ..RoutingConfig::n_fusion_without_alg4()
                    },
                    &net.capacities(),
                    threads,
                    registry,
                )
                .plan
            }
        }
    }
}

/// Entanglement rate of `algorithm` on one network instance: Monte Carlo
/// when `mc_rounds > 0`, analytic otherwise. Honors `config.threads`
/// (`threads == 1` reproduces the historical serial RNG streams exactly).
#[must_use]
pub fn measure_rate(
    config: &ExperimentConfig,
    algorithm: Algorithm,
    net: &QuantumNetwork,
    demands: &[Demand],
) -> f64 {
    measure_rate_counted(config, algorithm, net, demands, &Registry::disabled())
}

/// [`measure_rate`] with routing and Monte Carlo counters recorded into
/// `registry`. Counter totals are identical for any `threads` setting that
/// divides `config.mc_rounds` (see `estimate_plan_parallel_counted`).
#[must_use]
pub fn measure_rate_counted(
    config: &ExperimentConfig,
    algorithm: Algorithm,
    net: &QuantumNetwork,
    demands: &[Demand],
    registry: &Registry,
) -> f64 {
    let threads = config.resolved_threads();
    let plan = algorithm.route_threads_counted(net, demands, config.h, threads, registry);
    if config.mc_rounds == 0 {
        plan.total_rate(net)
    } else if threads > 1 {
        fusion_sim::evaluate::estimate_plan_parallel_counted(
            net,
            &plan,
            config.mc_rounds,
            config.seed,
            threads,
            &McCounters::from_registry(registry),
        )
        .total_rate()
    } else {
        estimate_plan_counted(
            net,
            &plan,
            config.mc_rounds,
            config.seed,
            &McCounters::from_registry(registry),
        )
        .total_rate()
    }
}

/// Mean entanglement rate of `algorithm` over the configured number of
/// random networks, with `mutate` applied to each instance (parameter
/// sweeps adjust q, uniform p, etc.).
#[must_use]
pub fn mean_rate(
    config: &ExperimentConfig,
    algorithm: Algorithm,
    mutate: &dyn Fn(&mut QuantumNetwork),
) -> f64 {
    let mut total = 0.0;
    for i in 0..config.networks {
        let (mut net, demands) = config.instance(i);
        mutate(&mut net);
        total += measure_rate(config, algorithm, &net, &demands);
    }
    total / config.networks as f64
}

/// Network-level statistics used for calibration reporting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstanceStats {
    /// Mean single-link success probability.
    pub mean_link_success: f64,
    /// Average switch degree.
    pub avg_degree: f64,
    /// Nodes (switches + users).
    pub nodes: usize,
    /// Edges.
    pub edges: usize,
}

/// Computes calibration statistics for an instance.
#[must_use]
pub fn instance_stats(net: &QuantumNetwork) -> InstanceStats {
    let g = net.graph();
    let switches: Vec<_> = g.node_ids().filter(|&n| net.is_switch(n)).collect();
    let avg_degree = if switches.is_empty() {
        0.0
    } else {
        switches.iter().map(|&s| g.degree(s)).sum::<usize>() as f64 / switches.len() as f64
    };
    InstanceStats {
        mean_link_success: fusion_sim::failure::mean_link_success(net),
        avg_degree,
        nodes: g.node_count(),
        edges: g.edge_count(),
    }
}

/// Applies a generator-kind override, keeping everything else default.
#[must_use]
pub fn with_generator(config: &ExperimentConfig, kind: GeneratorKind) -> ExperimentConfig {
    let mut out = config.clone();
    out.topology.kind = kind;
    out
}

/// Default physics constants, re-exported for the figure runners.
#[must_use]
pub fn default_physics() -> PhysicsParams {
    PhysicsParams::default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper() {
        let c = ExperimentConfig::default();
        assert_eq!(c.topology.num_switches, 100);
        assert_eq!(c.topology.num_user_pairs, 20);
        assert_eq!(c.network.switch_capacity, 10);
        assert_eq!(c.networks, 5);
        assert!((c.network.physics.swap_success - 0.9).abs() < 1e-12);
        assert!((c.network.physics.alpha - 1e-4).abs() < 1e-18);
    }

    #[test]
    fn instances_are_deterministic_and_distinct() {
        let c = ExperimentConfig::quick();
        let (a, da) = c.instance(0);
        let (b, db) = c.instance(0);
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(da, db);
        let (other, _) = c.instance(1);
        assert_ne!(
            a.graph().edge_count(),
            usize::MAX,
            "sanity: instance generation ran"
        );
        // Different index, different seed: almost surely different edges.
        assert!(
            a.graph().edge_count() != other.graph().edge_count()
                || a.node_count() == other.node_count()
        );
    }

    #[test]
    fn preset_names_resolve() {
        let names = preset_names();
        assert!(names.contains(&"default") && names.contains(&"quick"));
        assert!(names.contains(&"large-1k-grid"));
        for name in names {
            assert!(resolve_preset(name).is_some(), "{name} must resolve");
        }
        assert!(resolve_preset("nope").is_none());
    }

    #[test]
    fn algorithm_names_round_trip() {
        for algo in Algorithm::ALL {
            assert_eq!(Algorithm::from_name(algo.name()), Some(algo));
        }
        assert_eq!(
            Algorithm::from_name("alg-n-fusion"),
            Some(Algorithm::AlgNFusion),
            "parsing is case-insensitive"
        );
        assert_eq!(Algorithm::from_name("dijkstra"), None);
    }

    #[test]
    fn all_algorithms_run_on_quick_config() {
        let c = ExperimentConfig::quick();
        let (net, demands) = c.instance(0);
        for algo in Algorithm::ALL {
            let plan = algo.route(&net, &demands, c.h);
            let rate = plan.total_rate(&net);
            assert!(
                (0.0..=demands.len() as f64 + 1e-9).contains(&rate),
                "{} produced rate {rate}",
                algo.name()
            );
        }
    }

    #[test]
    fn scale_presets_are_runnable_shapes() {
        let presets = scale_presets();
        assert_eq!(presets.len(), 6);
        for (name, c) in &presets {
            assert!(
                c.topology.num_switches >= 1_000,
                "{name} is not large-scale"
            );
            assert_eq!(c.networks, 1, "{name} must average a single network");
            assert!(c.mc_rounds <= 500, "{name} would run for hours");
            assert!(c.resolved_threads() >= 1);
        }
        assert!(presets
            .iter()
            .any(|(n, c)| n.ends_with("-grid") && c.topology.kind == GeneratorKind::Grid));
    }

    #[test]
    fn large_grid_preset_routes_end_to_end() {
        // A scaled-down clone of the grid preset (same shape, fewer
        // switches) must route and estimate without issue.
        let mut c = ExperimentConfig::large_grid(1_000);
        c.topology.num_switches = 150;
        c.topology.num_user_pairs = 8;
        c.mc_rounds = 50;
        let (net, demands) = c.instance(0);
        assert_eq!(
            net.node_count(),
            150 + 16,
            "grid switches plus attached users"
        );
        let rate = measure_rate(&c, Algorithm::AlgNFusion, &net, &demands);
        assert!(rate > 0.0, "grid network must route something");
    }

    #[test]
    fn threaded_measure_matches_serial_analytically() {
        // With mc_rounds == 0 the rate is analytic, so thread count must
        // not change it at all.
        let mut c = ExperimentConfig::quick();
        c.mc_rounds = 0;
        let (net, demands) = c.instance(0);
        let serial = measure_rate(&c, Algorithm::AlgNFusion, &net, &demands);
        c.threads = 0;
        let parallel = measure_rate(&c, Algorithm::AlgNFusion, &net, &demands);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn stats_are_sane() {
        let c = ExperimentConfig::quick();
        let (net, _) = c.instance(0);
        let stats = instance_stats(&net);
        assert!(stats.mean_link_success > 0.0 && stats.mean_link_success < 1.0);
        assert!(stats.avg_degree > 1.0);
        assert_eq!(stats.nodes, net.node_count());
    }
}
