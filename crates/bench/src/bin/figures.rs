//! Regenerates the paper's evaluation figures as text tables and CSV
//! files.
//!
//! ```text
//! figures [IDS...] [--quick] [--analytic] [--seeds N] [--rounds N] [--out DIR]
//!
//!   IDS          figure ids (default: all) — fig7 fig8a fig8b fig9a fig9b
//!                fig9c fig9d ablation-eq1 ablation-h ablation-merge
//!                ablation-classic ablation-failures
//!   --quick      scaled-down config (30 switches, 6 states, 2 networks)
//!   --analytic   report analytic rates instead of Monte Carlo estimates
//!   --seeds N    networks per data point (default 5, paper's setting)
//!   --rounds N   Monte Carlo rounds per demand (default 1500)
//!   --out DIR    also write <DIR>/<id>.csv (default: results)
//!   --calibrate  print network calibration stats and exit
//! ```

use std::path::PathBuf;

use fusion_bench::figures::{run, ALL_FIGURES};
use fusion_bench::workloads::{instance_stats, ExperimentConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    let mut out_dir = PathBuf::from("results");
    let mut calibrate = false;
    let mut quick = false;
    let mut analytic = false;
    let mut seeds: Option<usize> = None;
    let mut rounds: Option<usize> = None;

    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--analytic" => analytic = true,
            "--seeds" => {
                seeds = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n: &usize| n > 0)
                        .unwrap_or_else(|| die("--seeds needs a positive integer")),
                );
            }
            "--rounds" => {
                rounds = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--rounds needs an integer")),
                );
            }
            "--out" => {
                out_dir = it
                    .next()
                    .map(PathBuf::from)
                    .unwrap_or_else(|| die("--out needs a directory"));
            }
            "--calibrate" => calibrate = true,
            "--help" | "-h" => {
                println!("usage: figures [IDS...] [--quick] [--analytic] [--seeds N] [--rounds N] [--out DIR] [--calibrate]");
                println!("figure ids: {}", ALL_FIGURES.join(" "));
                return;
            }
            other if other.starts_with("--") => die(&format!("unknown flag {other}")),
            other => ids.push(other.to_string()),
        }
    }

    // Resolve the base config first, then apply explicit overrides, so
    // flag order never matters (`--seeds 10 --quick` == `--quick --seeds 10`).
    if analytic && rounds.is_some_and(|n| n > 0) {
        die("--analytic conflicts with --rounds: analytic mode runs no Monte Carlo rounds");
    }
    let mut config = if quick {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::default()
    };
    if let Some(n) = seeds {
        config.networks = n;
    }
    if let Some(n) = rounds {
        config.mc_rounds = n;
    }
    if analytic {
        config.mc_rounds = 0;
    }

    if calibrate {
        for i in 0..config.networks {
            let (net, demands) = config.instance(i);
            let stats = instance_stats(&net);
            println!(
                "instance {i}: nodes={} edges={} avg_degree={:.2} mean_p={:.3} demands={}",
                stats.nodes,
                stats.edges,
                stats.avg_degree,
                stats.mean_link_success,
                demands.len()
            );
        }
        return;
    }

    if ids.is_empty() {
        ids = ALL_FIGURES.iter().map(|s| (*s).to_string()).collect();
    }

    let _ = std::fs::create_dir_all(&out_dir);
    for id in &ids {
        let Some(table) = run(id, &config) else {
            die(&format!(
                "unknown figure id {id}; known: {}",
                ALL_FIGURES.join(" ")
            ));
        };
        println!("{}", table.render());
        let csv_path = out_dir.join(format!("{id}.csv"));
        if let Err(e) = std::fs::write(&csv_path, table.to_csv()) {
            eprintln!("warning: could not write {}: {e}", csv_path.display());
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
