//! The online-service CLI: generate a trace and replay it against a
//! preset world.
//!
//! ```text
//! serve replay --preset NAME [--instance I] [--events N] [--seed S]
//!              [--arrival-rate F] [--mean-holding F] [--link-down-rate F]
//!              [--user-pool N] [--strategy incremental|from-scratch]
//!              [--stats] [--metrics FILE] [--mc-rounds N]
//!              [--audit-every N] [--log FILE]
//!     Builds the preset's network, generates a seeded trace, replays it,
//!     and prints throughput (events/sec), admission statistics, and the
//!     log fingerprint. Same preset + flags => byte-identical log, and
//!     the log is strategy-independent: --strategy only changes speed.
//!     --user-pool restricts demands to the first N users (recurring
//!     demands, the cache's regime); --stats prints the candidate-cache
//!     hit/invalidation counters from the telemetry registry after an
//!     incremental replay; --metrics writes the full deterministic-plane
//!     snapshot (every counter and histogram) as versioned flat JSON.
//!
//! serve presets
//!     Lists the preset names.
//! ```
//!
//! The EXPERIMENTS.md replay-throughput entries are produced with:
//! `cargo run --release -p fusion-serve --bin serve -- replay --preset large-1k --events 100000 --user-pool 8 --stats --strategy incremental`
//! (and `--strategy from-scratch` for the baseline).

use std::path::PathBuf;
use std::time::Instant;

use fusion_core::algorithms::AdmitStrategy;
use fusion_serve::{
    generate, presets, replay, resolve_preset, ReplayOptions, ServiceState, TraceConfig,
};
use fusion_telemetry::Registry;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("replay") => match parse_replay_args(&args[1..]) {
            Ok(parsed) => run_replay(&parsed),
            Err(e) => die(&e),
        },
        Some("presets") => {
            for p in presets() {
                println!(
                    "{}  ({} switches, {} user pairs, h={})",
                    p.name, p.topology.num_switches, p.topology.num_user_pairs, p.h
                );
            }
        }
        Some("--help" | "-h") | None => {
            println!("usage: serve replay --preset NAME [--instance I] [--events N] [--seed S]");
            println!(
                "                    [--arrival-rate F] [--mean-holding F] [--link-down-rate F]"
            );
            println!("                    [--user-pool N] [--strategy incremental|from-scratch]");
            println!("                    [--stats] [--metrics FILE] [--mc-rounds N]");
            println!("                    [--audit-every N] [--log FILE]");
            println!("       serve presets");
        }
        Some(other) => die(&format!(
            "unknown subcommand {other}; try replay or presets"
        )),
    }
}

/// Everything `serve replay` accepts, parsed and validated.
#[derive(Debug, Clone, PartialEq)]
struct ReplayArgs {
    preset_name: String,
    instance: usize,
    trace_config: TraceConfig,
    options: ReplayOptions,
    log_path: Option<PathBuf>,
    metrics_path: Option<PathBuf>,
    strategy: Option<AdmitStrategy>,
    print_stats: bool,
}

impl Default for ReplayArgs {
    fn default() -> Self {
        ReplayArgs {
            preset_name: String::from("quick"),
            instance: 0,
            trace_config: TraceConfig::default(),
            options: ReplayOptions::default(),
            log_path: None,
            metrics_path: None,
            strategy: None,
            print_stats: false,
        }
    }
}

/// Parses `serve replay` flags. Kept free of `exit` calls so the unit
/// tests below can cover the rejection paths: unknown flags, missing
/// values, and a `--flag` token where a value was expected are all hard
/// errors rather than being silently consumed.
fn parse_replay_args(args: &[String]) -> Result<ReplayArgs, String> {
    let mut parsed = ReplayArgs::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--preset" => parsed.preset_name = next_str(&mut it, "--preset")?,
            "--instance" => parsed.instance = next_parsed(&mut it, "--instance")?,
            "--events" => parsed.trace_config.events = next_parsed(&mut it, "--events")?,
            "--seed" => parsed.trace_config.seed = next_parsed(&mut it, "--seed")?,
            "--arrival-rate" => {
                parsed.trace_config.arrival_rate = next_parsed(&mut it, "--arrival-rate")?;
            }
            "--mean-holding" => {
                parsed.trace_config.mean_holding = next_parsed(&mut it, "--mean-holding")?;
            }
            "--link-down-rate" => {
                parsed.trace_config.link_down_rate = next_parsed(&mut it, "--link-down-rate")?;
            }
            "--user-pool" => parsed.trace_config.user_pool = next_parsed(&mut it, "--user-pool")?,
            "--strategy" => {
                parsed.strategy = Some(match next_str(&mut it, "--strategy")?.as_str() {
                    "incremental" => AdmitStrategy::Incremental,
                    "from-scratch" => AdmitStrategy::FromScratch,
                    other => {
                        return Err(format!(
                            "--strategy must be incremental or from-scratch, got {other}"
                        ));
                    }
                });
            }
            "--stats" => parsed.print_stats = true,
            "--metrics" => {
                parsed.metrics_path = Some(PathBuf::from(next_str(&mut it, "--metrics")?))
            }
            "--mc-rounds" => parsed.options.mc_rounds = next_parsed(&mut it, "--mc-rounds")?,
            "--audit-every" => parsed.options.audit_every = next_parsed(&mut it, "--audit-every")?,
            "--log" => parsed.log_path = Some(PathBuf::from(next_str(&mut it, "--log")?)),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    parsed
        .trace_config
        .validate()
        .map_err(|e| format!("invalid trace config: {e}"))?;
    Ok(parsed)
}

fn run_replay(args: &ReplayArgs) {
    let Some(preset) = resolve_preset(&args.preset_name) else {
        die(&format!(
            "unknown preset {}; available: {}",
            args.preset_name,
            presets()
                .iter()
                .map(|p| p.name)
                .collect::<Vec<_>>()
                .join(" ")
        ));
    };

    eprintln!("building {} instance {}...", preset.name, args.instance);
    let net = preset.network_instance(args.instance);
    eprintln!(
        "  {} nodes, {} edges",
        net.node_count(),
        net.graph().edge_count()
    );
    let mut routing = preset.routing_config();
    if let Some(s) = args.strategy {
        routing.admit_strategy = s;
    }
    // Telemetry is observational only — logs and digests are identical
    // either way — so the registry is enabled exactly when some output
    // reads it.
    let registry = if args.print_stats || args.metrics_path.is_some() {
        Registry::enabled()
    } else {
        Registry::disabled()
    };
    let mut state = ServiceState::with_telemetry(net, routing, registry);
    let trace = generate(state.network(), &args.trace_config);
    eprintln!(
        "replaying {} events (seed {:#x})...",
        trace.events.len(),
        args.trace_config.seed
    );

    let started = Instant::now();
    let report = replay(&mut state, &trace, &args.options);
    let elapsed = started.elapsed();
    state
        .audit()
        .unwrap_or_else(|e| die(&format!("final audit failed: {e}")));

    let stats = &report.stats;
    let secs = elapsed.as_secs_f64();
    println!("preset           {}", preset.name);
    println!("events           {}", stats.events);
    println!("elapsed          {secs:.3} s");
    println!("events/sec       {:.1}", stats.events as f64 / secs);
    println!(
        "arrivals         {} ({} admitted, {} no-route, {} saturated)",
        stats.arrivals, stats.admitted, stats.rejected_no_route, stats.rejected_saturated
    );
    println!("admit fraction   {:.4}", stats.admit_fraction());
    println!(
        "departures       {} ({} no-ops)",
        stats.departures, stats.depart_noops
    );
    println!(
        "link-downs       {} ({} plans evicted)",
        stats.link_downs, stats.evicted
    );
    println!("final live       {}", stats.final_live);
    println!("final epoch      {}", stats.final_epoch);
    println!("rate sum         {:.6}", stats.admitted_rate_sum);
    println!("log fingerprint  {:016x}", report.fingerprint());

    if args.print_stats {
        let snap = state.registry().snapshot();
        if snap.get("serve.cache.admissions").is_some() {
            let v = |name: &str| snap.value(name);
            println!("cache admissions {}", v("serve.cache.admissions"));
            println!(
                "cache hits       {} full, {} partial, {} miss",
                v("serve.cache.full_hits"),
                v("serve.cache.partial_hits"),
                v("serve.cache.misses")
            );
            let reused = v("serve.cache.widths_reused");
            let recomputed = v("serve.cache.widths_recomputed");
            let consulted = reused + recomputed;
            let hit_fraction = if consulted == 0 {
                0.0
            } else {
                reused as f64 / consulted as f64
            };
            println!(
                "widths           {reused} reused, {recomputed} recomputed ({hit_fraction:.4} hit fraction)",
            );
            println!(
                "invalidations    {} by node, {} by edge, {} entries evicted",
                v("serve.cache.invalidated_by_node"),
                v("serve.cache.invalidated_by_edge"),
                v("serve.cache.entries_evicted")
            );
            println!(
                "repairs          {} slots damaged, {} repaired (depth histogram in --metrics)",
                v("serve.cache.damaged"),
                v("serve.cache.repairs")
            );
            println!(
                "spt cache        {} queries, {} hits, {} invalidated, {} settles shared",
                v("alg2.spt.queries"),
                v("alg2.spt.hits"),
                v("alg2.spt.invalidated"),
                v("alg2.spt.shared_settles")
            );
            println!("double cuts      {} no-op fail_links", v("serve.fail_link_noops"));
        } else {
            println!("cache            (from-scratch strategy: no cache)");
        }
        println!("metrics digest   {:016x}", snap.digest());
    }

    if let Some(path) = &args.metrics_path {
        let snap = state.registry().snapshot();
        if let Err(e) = std::fs::write(path, snap.to_json()) {
            die(&format!("could not write {}: {e}", path.display()));
        }
        eprintln!("wrote {}", path.display());
    }

    if let Some(path) = &args.log_path {
        let mut text = report.log.join("\n");
        text.push('\n');
        if let Err(e) = std::fs::write(path, text) {
            die(&format!("could not write {}: {e}", path.display()));
        }
        eprintln!("wrote {}", path.display());
    }
}

/// The next token as a flag value. A missing token or one that is itself
/// a `--flag` is an error — `serve replay --log --stats` means a
/// forgotten value, not a file named `--stats`.
fn next_str(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<String, String> {
    match it.next() {
        Some(v) if v.starts_with("--") => {
            Err(format!("{flag} needs a value, found flag {v} instead"))
        }
        Some(v) => Ok(v.clone()),
        None => Err(format!("{flag} needs a value")),
    }
}

fn next_parsed<T: std::str::FromStr>(
    it: &mut std::slice::Iter<'_, String>,
    flag: &str,
) -> Result<T, String> {
    let raw = next_str(it, flag)?;
    raw.parse()
        .map_err(|_| format!("{flag} could not parse {raw}"))
}

fn die(msg: &str) -> ! {
    eprintln!("serve: {msg}");
    std::process::exit(1);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_a_full_flag_set() {
        let parsed = parse_replay_args(&strs(&[
            "--preset",
            "large-1k",
            "--events",
            "5000",
            "--seed",
            "7",
            "--user-pool",
            "8",
            "--strategy",
            "from-scratch",
            "--stats",
            "--metrics",
            "out.json",
            "--mc-rounds",
            "16",
        ]))
        .unwrap();
        assert_eq!(parsed.preset_name, "large-1k");
        assert_eq!(parsed.trace_config.events, 5000);
        assert_eq!(parsed.trace_config.seed, 7);
        assert_eq!(parsed.trace_config.user_pool, 8);
        assert_eq!(parsed.strategy, Some(AdmitStrategy::FromScratch));
        assert!(parsed.print_stats);
        assert_eq!(parsed.metrics_path, Some(PathBuf::from("out.json")));
        assert_eq!(parsed.options.mc_rounds, 16);
    }

    #[test]
    fn defaults_match_an_empty_invocation() {
        assert_eq!(parse_replay_args(&[]).unwrap(), ReplayArgs::default());
    }

    #[test]
    fn unknown_flags_are_usage_errors() {
        let err = parse_replay_args(&strs(&["--bogus"])).unwrap_err();
        assert!(err.contains("unknown flag --bogus"), "{err}");
        // Bare positional words are equally unknown.
        assert!(parse_replay_args(&strs(&["surprise"])).is_err());
    }

    #[test]
    fn a_flag_is_not_a_value() {
        // `--log --stats` is a forgotten value, not a file named --stats.
        let err = parse_replay_args(&strs(&["--log", "--stats"])).unwrap_err();
        assert!(err.contains("--log needs a value"), "{err}");
        let err = parse_replay_args(&strs(&["--events"])).unwrap_err();
        assert!(err.contains("--events needs a value"), "{err}");
    }

    #[test]
    fn bad_values_are_reported_with_their_flag() {
        let err = parse_replay_args(&strs(&["--events", "many"])).unwrap_err();
        assert!(err.contains("--events could not parse many"), "{err}");
        let err = parse_replay_args(&strs(&["--strategy", "psychic"])).unwrap_err();
        assert!(err.contains("incremental or from-scratch"), "{err}");
    }

    /// Degenerate trace knobs are parse-time errors, not replay panics:
    /// a zero arrival rate would never emit an event, a zero holding time
    /// has no well-defined event order, and a pool of one user cannot
    /// form demands. `--user-pool 0` stays valid ("all users").
    #[test]
    fn degenerate_trace_knobs_are_rejected_at_parse_time() {
        let err = parse_replay_args(&strs(&["--arrival-rate", "0"])).unwrap_err();
        assert!(err.contains("invalid trace config"), "{err}");
        assert!(err.contains("arrival rate"), "{err}");
        let err = parse_replay_args(&strs(&["--mean-holding", "0"])).unwrap_err();
        assert!(err.contains("mean holding"), "{err}");
        let err = parse_replay_args(&strs(&["--link-down-rate", "-1"])).unwrap_err();
        assert!(err.contains("link-down rate"), "{err}");
        let err = parse_replay_args(&strs(&["--user-pool", "1"])).unwrap_err();
        assert!(err.contains("user pool"), "{err}");
        assert!(parse_replay_args(&strs(&["--user-pool", "0"])).is_ok());
    }
}
