//! Extension: multiparty GHZ-state distribution.
//!
//! The paper scopes demands to *pairs* of users ("a quantum state can only
//! be shared between two quantum-users", §III-A) but motivates n-fusion
//! with k-party GHZ states throughout §II — Fig. 2 shows three processor
//! sets fused into one 6-GHZ state, and GHZ-channel teleportation \[25\] is
//! the target application. This module implements that natural extension:
//! distributing one GHZ state among `k ≥ 2` users.
//!
//! Routing uses the *hub* pattern, the direct generalization of the
//! paper's flow-like graphs: pick a rendezvous switch, route one
//! (width-optimized) branch from every member to it, and let the hub's
//! single n-fusion stitch the k branches into a k-GHZ state. The state is
//! established when every member's branch survives and the hub fuses —
//! exactly the connectivity semantics of §III-C applied to a star:
//!
//! `P = Π_members P(member → hub)` (the hub's swap factor appears once,
//! inside the Eq.-1 recursion of whichever branch reaches it first —
//! handled by evaluating the star as one multi-terminal flow).

use std::fmt;

use fusion_graph::{Metric, NodeId};
use serde::{Deserialize, Serialize};

use crate::algorithms::alg1::{largest_rate_path, PathConstraints};
use crate::demand::DemandId;
use crate::flow::WidthedPath;
use crate::metrics;
use crate::network::QuantumNetwork;
use crate::plan::DemandPlan;

/// One demanded k-party GHZ state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultipartyDemand {
    /// Stable identifier.
    pub id: DemandId,
    /// The quantum-users that must share the GHZ state (k ≥ 2, distinct).
    pub members: Vec<NodeId>,
}

impl MultipartyDemand {
    /// Creates a multiparty demand.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two members are given or members repeat.
    #[must_use]
    pub fn new(id: DemandId, members: Vec<NodeId>) -> Self {
        assert!(members.len() >= 2, "a GHZ state needs at least two members");
        let mut sorted = members.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), members.len(), "members must be distinct");
        MultipartyDemand { id, members }
    }

    /// Number of parties.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.members.len()
    }
}

impl fmt::Display for MultipartyDemand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: GHZ(", self.id)?;
        for (i, m) in self.members.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{m}")?;
        }
        write!(f, ")")
    }
}

/// A routed multiparty state: the hub switch plus one branch per member.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StarPlan {
    /// The demand served.
    pub demand: MultipartyDemand,
    /// The rendezvous switch whose n-fusion stitches the branches, or
    /// `None` when the demand could not be routed.
    pub hub: Option<NodeId>,
    /// One branch per member (member → hub), aligned with
    /// `demand.members`; unrouted members are absent.
    pub branches: Vec<WidthedPath>,
}

impl StarPlan {
    /// `true` when every member has a routed branch.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.hub.is_some() && self.branches.len() == self.demand.members.len()
    }

    /// Analytic success probability: every branch must deliver its member's
    /// qubit to the hub (each branch priced by the n-fusion path rate,
    /// which already charges `q` per intermediate switch), and the hub's
    /// own k-way fusion must succeed once.
    #[must_use]
    pub fn rate(&self, net: &QuantumNetwork) -> f64 {
        if !self.is_complete() {
            return 0.0;
        }
        let branches: f64 = self
            .branches
            .iter()
            .map(|wp| metrics::widthed_path_rate(net, wp).value())
            .product();
        branches * net.swap_success()
    }

    /// Total qubits this star pins at `node` across all branches.
    #[must_use]
    pub fn qubits_at(&self, node: NodeId) -> u32 {
        self.branches
            .iter()
            .flat_map(WidthedPath::hops)
            .filter(|&(u, v, _)| u == node || v == node)
            .map(|(_, _, w)| w)
            .sum()
    }
}

/// Tuning knobs for multiparty routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultipartyConfig {
    /// Hub candidates examined per demand (the best-connected switches).
    pub hub_candidates: usize,
    /// Channel width of each branch.
    pub branch_width: u32,
    /// Spend leftover qubits widening branch channels afterwards.
    pub use_alg4: bool,
}

impl Default for MultipartyConfig {
    fn default() -> Self {
        MultipartyConfig {
            hub_candidates: 8,
            branch_width: 1,
            use_alg4: true,
        }
    }
}

/// Result of routing a batch of multiparty demands.
#[derive(Debug, Clone)]
pub struct MultipartyOutcome {
    /// One star per demand, in input order.
    pub stars: Vec<StarPlan>,
    /// Remaining qubits per node.
    pub remaining: Vec<u32>,
}

impl MultipartyOutcome {
    /// Expected number of established GHZ states per attempt.
    #[must_use]
    pub fn total_rate(&self, net: &QuantumNetwork) -> f64 {
        self.stars.iter().map(|s| s.rate(net)).sum()
    }
}

/// Routes every multiparty demand greedily: for each demand (in input
/// order), evaluate the configured number of hub candidates — switches
/// ranked by their best-branch product — and keep the best feasible star,
/// deducting its qubits before the next demand.
///
/// # Panics
///
/// Panics if a member id is not a user, or the config is degenerate
/// (`hub_candidates == 0` or `branch_width == 0`).
#[must_use]
pub fn route_multiparty(
    net: &QuantumNetwork,
    demands: &[MultipartyDemand],
    config: &MultipartyConfig,
) -> MultipartyOutcome {
    assert!(config.hub_candidates > 0, "need at least one hub candidate");
    assert!(config.branch_width > 0, "branch width must be positive");
    for d in demands {
        for &m in &d.members {
            assert!(net.is_user(m), "GHZ member {m} must be a quantum-user");
        }
    }

    let mut remaining = net.capacities();
    let mut stars = Vec::with_capacity(demands.len());
    for demand in demands {
        let star = best_star(net, demand, config, &remaining);
        if let Some((hub, branches)) = star {
            commit(&mut remaining, &branches);
            stars.push(StarPlan {
                demand: demand.clone(),
                hub: Some(hub),
                branches,
            });
        } else {
            stars.push(StarPlan {
                demand: demand.clone(),
                hub: None,
                branches: Vec::new(),
            });
        }
    }

    if config.use_alg4 {
        widen_stars(net, &mut stars, &mut remaining);
    }
    MultipartyOutcome { stars, remaining }
}

/// Scores hubs and returns the best feasible star for one demand.
fn best_star(
    net: &QuantumNetwork,
    demand: &MultipartyDemand,
    config: &MultipartyConfig,
    remaining: &[u32],
) -> Option<(NodeId, Vec<WidthedPath>)> {
    // Rank hubs by the product of single-branch metrics, cheaply estimated
    // with one Alg.-1 run per member against the residual capacity.
    let cons = PathConstraints::default();
    let mut per_member: Vec<Vec<(NodeId, Metric)>> = Vec::new();
    for &m in &demand.members {
        // Alg. 1 gives the best rate from the member to *every* node; we
        // reuse it by probing each switch as a pseudo-destination.
        let mut reach: Vec<(NodeId, Metric)> = net
            .graph()
            .node_ids()
            .filter(|&v| net.is_switch(v))
            .filter_map(|v| {
                largest_rate_path(net, m, v, config.branch_width, remaining, &cons)
                    .map(|(_, metric)| (v, metric))
            })
            .collect();
        reach.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        if reach.is_empty() {
            return None;
        }
        per_member.push(reach);
    }

    // Candidate hubs: reachable by every member, ranked by metric product.
    let mut hub_scores: std::collections::BTreeMap<NodeId, f64> = std::collections::BTreeMap::new();
    for reach in &per_member {
        for &(hub, m) in reach {
            *hub_scores.entry(hub).or_insert(1.0) *= m.value();
        }
    }
    let mut hubs: Vec<(NodeId, f64)> = hub_scores
        .into_iter()
        .filter(|&(hub, _)| {
            per_member
                .iter()
                .all(|reach| reach.iter().any(|&(h, _)| h == hub))
        })
        .collect();
    hubs.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("finite scores")
            .then(a.0.cmp(&b.0))
    });

    for (hub, _) in hubs.into_iter().take(config.hub_candidates) {
        if let Some(branches) = build_star(net, demand, config, remaining, hub) {
            return Some((hub, branches));
        }
    }
    None
}

/// Routes the k branches toward a fixed hub under the residual capacity,
/// deducting as it goes so branches do not overbook shared switches.
fn build_star(
    net: &QuantumNetwork,
    demand: &MultipartyDemand,
    config: &MultipartyConfig,
    remaining: &[u32],
    hub: NodeId,
) -> Option<Vec<WidthedPath>> {
    let w = config.branch_width;
    let mut budget = remaining.to_vec();
    // The hub terminates k branches: w qubits per branch, all fused at
    // once — reserve them up front.
    let hub_need = w * demand.members.len() as u32;
    if budget[hub.index()] < hub_need {
        return None;
    }
    let mut branches = Vec::with_capacity(demand.members.len());
    let mut cons = PathConstraints::default();
    for &m in &demand.members {
        let (path, _) = largest_rate_path(net, m, hub, w, &budget, &cons)?;
        // Branches must be internally disjoint (each switch fuses for this
        // state exactly once, at the hub or inside one branch).
        for &node in path.intermediates() {
            cons.ban_node(node);
        }
        for (u, v) in path.hops_iter() {
            for node in [u, v] {
                if net.is_switch(node) {
                    budget[node.index()] = budget[node.index()].saturating_sub(w);
                }
            }
        }
        branches.push(WidthedPath::uniform(path, w));
    }
    Some(branches)
}

fn commit(remaining: &mut [u32], branches: &[WidthedPath]) {
    for wp in branches {
        for (u, v, w) in wp.hops() {
            for node in [u, v] {
                remaining[node.index()] = remaining[node.index()].saturating_sub(w);
            }
        }
    }
}

/// Alg.-4-style widening: offer each remaining qubit pair to the branch
/// hop with the largest marginal gain in star rate.
fn widen_stars(net: &QuantumNetwork, stars: &mut [StarPlan], remaining: &mut [u32]) {
    for edge in net.graph().edge_ids() {
        let (u, v) = net.graph().endpoints(edge);
        loop {
            if remaining[u.index()] == 0 || remaining[v.index()] == 0 {
                break;
            }
            let mut best: Option<(f64, usize, usize, usize)> = None;
            for (si, star) in stars.iter().enumerate() {
                let before = star.rate(net);
                for (bi, wp) in star.branches.iter().enumerate() {
                    for (hi, (a, b)) in wp.path.hops_iter().enumerate() {
                        if (a, b) != (u, v) && (a, b) != (v, u) {
                            continue;
                        }
                        let mut widened = star.clone();
                        widened.branches[bi].widen_hop(hi);
                        let gain = widened.rate(net) - before;
                        if gain > 1e-12 && best.as_ref().is_none_or(|b| gain > b.0) {
                            best = Some((gain, si, bi, hi));
                        }
                    }
                }
            }
            let Some((_, si, bi, hi)) = best else { break };
            stars[si].branches[bi].widen_hop(hi);
            remaining[u.index()] -= 1;
            remaining[v.index()] -= 1;
        }
    }
}

/// Converts a completed star into the pairwise [`DemandPlan`] form used by
/// the Monte Carlo machinery, treating the first member as the source and
/// checking connectivity to the *hub-joined* remainder. Used by
/// `fusion-sim` to validate star rates by sampling.
#[must_use]
pub fn star_as_flow(star: &StarPlan) -> Option<DemandPlan> {
    let hub = star.hub?;
    if !star.is_complete() {
        return None;
    }
    let first = star.demand.members.first().copied()?;
    let last = star.demand.members.last().copied()?;
    let demand = crate::demand::Demand::new(star.demand.id, first, last);
    let mut plan = DemandPlan::empty(demand);
    for (i, wp) in star.branches.iter().enumerate() {
        // Orient member branches toward the hub; the flow graph is only
        // used for bookkeeping (nodes/edges/widths), while multiparty
        // rates come from StarPlan::rate.
        let _ = i;
        for (u, v, w) in wp.hops() {
            plan.flow.add_parallel(u, v, w);
        }
        plan.paths.push(wp.clone());
    }
    debug_assert!(plan.flow.nodes().contains(&hub));
    Some(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkParams;
    use fusion_topology::TopologyConfig;

    fn world(seed: u64) -> QuantumNetwork {
        let topo = TopologyConfig {
            num_switches: 30,
            num_user_pairs: 4, // 8 users to draw members from
            avg_degree: 6.0,
            ..TopologyConfig::default()
        }
        .generate(seed);
        QuantumNetwork::from_topology(&topo, &NetworkParams::default())
    }

    fn users(net: &QuantumNetwork, k: usize) -> Vec<NodeId> {
        net.graph()
            .node_ids()
            .filter(|&n| net.is_user(n))
            .take(k)
            .collect()
    }

    #[test]
    fn routes_three_party_ghz() {
        let net = world(1);
        let demand = MultipartyDemand::new(DemandId::new(0), users(&net, 3));
        let out = route_multiparty(&net, &[demand], &MultipartyConfig::default());
        let star = &out.stars[0];
        assert!(
            star.is_complete(),
            "3-party demand should route in a 30-switch net"
        );
        assert_eq!(star.branches.len(), 3);
        let rate = star.rate(&net);
        assert!(rate > 0.0 && rate <= 1.0);
        // Every branch ends at the hub.
        let hub = star.hub.unwrap();
        for wp in &star.branches {
            assert_eq!(wp.path.destination(), hub);
        }
    }

    #[test]
    fn branches_are_internally_disjoint() {
        let net = world(2);
        let demand = MultipartyDemand::new(DemandId::new(0), users(&net, 4));
        let out = route_multiparty(&net, &[demand], &MultipartyConfig::default());
        let star = &out.stars[0];
        if !star.is_complete() {
            return; // 4-party may be infeasible on some seeds; other tests cover routing
        }
        let mut seen = std::collections::HashSet::new();
        for wp in &star.branches {
            for &node in wp.path.intermediates() {
                assert!(
                    seen.insert(node),
                    "switch {node} relays two branches of one GHZ state"
                );
            }
        }
    }

    #[test]
    fn capacity_is_respected() {
        let net = world(3);
        let demands: Vec<_> = (0..2)
            .map(|i| {
                MultipartyDemand::new(DemandId::new(i), users(&net, 6)[i * 3..i * 3 + 3].to_vec())
            })
            .collect();
        let out = route_multiparty(&net, &demands, &MultipartyConfig::default());
        for node in net.graph().node_ids().filter(|&n| net.is_switch(n)) {
            let spent: u32 = out.stars.iter().map(|s| s.qubits_at(node)).sum();
            assert!(
                spent <= net.capacity(node),
                "switch {node}: {spent} > {}",
                net.capacity(node)
            );
        }
    }

    #[test]
    fn pairwise_demand_reduces_to_paper_model() {
        // k = 2 must behave like an ordinary pairwise route: rate equals
        // branch-product × q, consistent with a 2-branch flow through the
        // hub.
        let net = world(4);
        let demand = MultipartyDemand::new(DemandId::new(0), users(&net, 2));
        let out = route_multiparty(&net, &[demand], &MultipartyConfig::default());
        let star = &out.stars[0];
        assert!(star.is_complete());
        let product: f64 = star
            .branches
            .iter()
            .map(|wp| metrics::widthed_path_rate(&net, wp).value())
            .product();
        assert!((star.rate(&net) - product * net.swap_success()).abs() < 1e-12);
    }

    #[test]
    fn higher_arity_is_harder() {
        let net = world(5);
        let all_users = users(&net, 4);
        let rate_for = |k: usize| {
            let demand = MultipartyDemand::new(DemandId::new(0), all_users[..k].to_vec());
            route_multiparty(&net, &[demand], &MultipartyConfig::default()).total_rate(&net)
        };
        let two = rate_for(2);
        let four = rate_for(4);
        assert!(
            four <= two + 1e-9,
            "a 4-party GHZ state cannot be easier than a Bell pair: {four} vs {two}"
        );
    }

    #[test]
    fn widening_improves_rates() {
        let net = world(6);
        let demand = MultipartyDemand::new(DemandId::new(0), users(&net, 3));
        let base = route_multiparty(
            &net,
            std::slice::from_ref(&demand),
            &MultipartyConfig {
                use_alg4: false,
                ..MultipartyConfig::default()
            },
        );
        let widened = route_multiparty(&net, &[demand], &MultipartyConfig::default());
        assert!(widened.total_rate(&net) >= base.total_rate(&net) - 1e-9);
    }

    #[test]
    fn unroutable_demand_gets_zero() {
        let mut b = QuantumNetwork::builder();
        let u1 = b.user(0.0, 0.0);
        let u2 = b.user(1.0, 0.0);
        let u3 = b.user(2.0, 0.0);
        let s1 = b.switch(0.5, 0.0, 10);
        b.link(u1, s1).unwrap();
        b.link(u2, s1).unwrap();
        // u3 is isolated.
        let net = b.build();
        let demand = MultipartyDemand::new(DemandId::new(0), vec![u1, u2, u3]);
        let out = route_multiparty(&net, &[demand], &MultipartyConfig::default());
        assert!(!out.stars[0].is_complete());
        assert_eq!(out.total_rate(&net), 0.0);
    }

    #[test]
    fn star_converts_to_flow_for_simulation() {
        let net = world(7);
        let demand = MultipartyDemand::new(DemandId::new(0), users(&net, 3));
        let out = route_multiparty(&net, &[demand], &MultipartyConfig::default());
        let plan = star_as_flow(&out.stars[0]).expect("complete star converts");
        assert_eq!(plan.paths.len(), 3);
        assert!(!plan.flow.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least two members")]
    fn rejects_single_member() {
        let _ = MultipartyDemand::new(DemandId::new(0), vec![NodeId::new(0)]);
    }

    #[test]
    #[should_panic(expected = "must be distinct")]
    fn rejects_duplicate_members() {
        let _ = MultipartyDemand::new(DemandId::new(0), vec![NodeId::new(0), NodeId::new(0)]);
    }
}
