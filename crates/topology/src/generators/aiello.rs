use fusion_graph::{NodeId, UnGraph};
use rand::Rng;

use super::{place_switches, span};
use crate::config::TopologyConfig;
use crate::model::{Link, Site};

/// Generates the switch layer with an Aiello-style power-law random graph
/// \[33\], realized through Chung-Lu weighted sampling.
///
/// Expected node degrees follow a Pareto distribution with exponent `gamma`
/// whose mean equals the configured average degree; pairs `(u, v)` connect
/// with probability `min(1, w_u·w_v / Σw)`, which preserves the expected
/// degree sequence. The result resembles scale-free Internet-like
/// topologies: a few high-degree hubs and many low-degree leaves.
pub(crate) fn aiello(cfg: &TopologyConfig, gamma: f64, rng: &mut impl Rng) -> UnGraph<Site, Link> {
    assert!(
        gamma > 2.0,
        "aiello gamma must exceed 2 for a finite mean degree"
    );
    let n = cfg.num_switches;
    let mut graph = place_switches(n, cfg.side, rng);
    if n < 2 {
        return graph;
    }

    // Pareto(x_min, gamma-1) has mean x_min·(gamma-1)/(gamma-2); choose
    // x_min so the mean expected degree equals the target.
    let x_min = cfg.avg_degree * (gamma - 2.0) / (gamma - 1.0);
    let max_w = (n - 1) as f64;
    let weights: Vec<f64> = (0..n)
        .map(|_| {
            let u: f64 = rng.gen_range(0.0_f64..1.0).max(1e-12);
            (x_min * u.powf(-1.0 / (gamma - 1.0))).min(max_w)
        })
        .collect();
    let total: f64 = weights.iter().sum();

    for u in 0..n {
        for v in (u + 1)..n {
            let p = (weights[u] * weights[v] / total).min(1.0);
            if rng.gen_bool(p) {
                let d = span(&graph, u, v);
                graph.add_edge(NodeId::new(u), NodeId::new(v), Link::new(d));
            }
        }
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg(n: usize, degree: f64) -> TopologyConfig {
        TopologyConfig {
            num_switches: n,
            avg_degree: degree,
            ..TopologyConfig::default()
        }
    }

    #[test]
    fn mean_degree_near_target() {
        let c = cfg(150, 10.0);
        let mut total = 0.0;
        for seed in 0..5 {
            let g = aiello(&c, 2.5, &mut StdRng::seed_from_u64(seed));
            total += g.average_degree();
        }
        let avg = total / 5.0;
        assert!((avg - 10.0).abs() < 2.5, "average degree {avg}");
    }

    #[test]
    fn produces_degree_skew() {
        // Power-law graphs should have a heavier degree spread than the
        // Poisson-like Waxman graph: max degree well above the mean.
        let c = cfg(150, 8.0);
        let g = aiello(&c, 2.2, &mut StdRng::seed_from_u64(7));
        let mean = g.average_degree();
        let max = g.node_ids().map(|v| g.degree(v)).max().unwrap() as f64;
        assert!(max > 2.0 * mean, "max {max} vs mean {mean}");
    }

    #[test]
    #[should_panic(expected = "gamma must exceed 2")]
    fn rejects_heavy_tail_without_mean() {
        let c = cfg(10, 4.0);
        let _ = aiello(&c, 1.5, &mut StdRng::seed_from_u64(0));
    }

    #[test]
    fn lengths_are_euclidean() {
        let c = cfg(60, 6.0);
        let g = aiello(&c, 2.5, &mut StdRng::seed_from_u64(3));
        for e in g.edges() {
            let d = g
                .node(e.source)
                .position
                .distance(g.node(e.target).position);
            assert!((d - e.weight.length).abs() < 1e-9);
        }
    }

    #[test]
    fn single_node_is_safe() {
        let c = cfg(1, 4.0);
        let g = aiello(&c, 2.5, &mut StdRng::seed_from_u64(1));
        assert_eq!(g.edge_count(), 0);
    }
}
