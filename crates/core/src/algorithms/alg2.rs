//! Algorithm 2 — Paths Selection: Yen's deviation structure driven by
//! Algorithm 1, producing up to `h` candidate paths per (demand, width)
//! for every width from `MAX_WIDTH` down to 1.
//!
//! Candidates are discovered with the n-fusion path metric (which is
//! decomposable and therefore Dijkstra-compatible) and scored with the
//! caller's [`SwapMode`]; capacity during selection is the *full* network
//! capacity — contention is resolved later by Algorithm 3.
//!
//! # Width-descent engine
//!
//! The default engine ([`paths_selection`]) exploits how much the widths
//! share: stepping the width down only *grows* the capacity-feasible
//! subgraph (a node relaying width `w + 1` always relays `w`), so one
//! per-demand descent carries its state across widths instead of starting
//! over per width. Concretely, per demand it
//!
//! * keeps a [`DescentReach`] view that is repaired incrementally at each
//!   width step — only the newly-feasible region is re-searched — and
//!   whose negative answers are exact certificates that let provably-empty
//!   searches be skipped before they explore the graph;
//! * runs every remaining Yen/Dijkstra query *goal-directed*
//!   ([`max_product_resume`]): the search pauses the moment the
//!   destination settles, instead of exhausting all of a 10k-switch
//!   graph for a path that only needs its near side;
//! * reuses one [`SearchScratch`] arena and per-width channel-success
//!   tables (`1 - (1 - p_e)^w` per edge, computed once per width, not
//!   once per relaxation).
//!
//! All three are result-preserving: the settle order, tie-breaking, and
//! `f64` arithmetic are exactly those of the per-width sweep, so the
//! output is byte-identical to [`paths_selection_reference`] — the
//! retained original implementation — which the differential harness
//! (`crates/core/tests/alg2_differential.rs`) enforces over random
//! networks, loads, seeds, and modes.

use std::collections::{HashMap, HashSet};

use fusion_graph::search::{max_product_restore, max_product_resume, ResumeSnapshot};
use fusion_graph::{
    CertEntry, CertificateRecorder, DescentReach, Metric, NodeId, Path, SearchCounters,
    SearchScratch, WidthFeasibility,
};
use fusion_telemetry::{Counter, Registry};

use crate::algorithms::alg1::{largest_rate_path_with, PathConstraints};
use crate::demand::{Demand, DemandId};
use crate::flow::WidthedPath;
use crate::metrics::path_rate;
use crate::network::QuantumNetwork;
use crate::plan::SwapMode;

/// The paper's width-feasibility thresholds for one node at residual
/// capacity `capacity`: `(largest relayable width, largest terminable
/// width)`.
///
/// A switch of capacity `c` relays width `c / 2` (an intermediate pins
/// `2w` qubits, paper line 9) and terminates width `c`; users never relay
/// but terminate up to their capacity. Single-sourced here so the
/// width-descent engine and the serve layer's cache invalidation agree
/// exactly on when a residual-capacity change flips a feasibility answer.
#[must_use]
pub fn node_width_thresholds(net: &QuantumNetwork, node: NodeId, capacity: u32) -> (u32, u32) {
    let relay = if net.is_switch(node) { capacity / 2 } else { 0 };
    (relay, capacity)
}

/// One candidate route emitted by Algorithm 2.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidatePath {
    /// The demand this candidate serves.
    pub demand: DemandId,
    /// The loopless route.
    pub path: Path,
    /// Uniform channel width.
    pub width: u32,
    /// Mode-dependent success score used for Algorithm 3's ordering.
    pub metric: Metric,
}

/// Runs Algorithm 2 for every demand: for each width from `max_width` down
/// to 1, finds up to `h` highest-rate loopless paths via Yen deviations
/// over Algorithm 1.
///
/// `capacity` is the per-node qubit budget used for feasibility during
/// selection (the paper uses the full capacity here; B1 passes its running
/// remainder).
///
/// This is the width-descent engine (see the module docs); its output is
/// byte-identical to [`paths_selection_reference`].
///
/// # Panics
///
/// Panics if `h == 0`, `max_width == 0`, or `capacity` is shorter than
/// the node count.
#[must_use]
pub fn paths_selection(
    net: &QuantumNetwork,
    demands: &[Demand],
    capacity: &[u32],
    h: usize,
    max_width: u32,
    mode: SwapMode,
) -> Vec<CandidatePath> {
    paths_selection_counted(
        net,
        demands,
        capacity,
        h,
        max_width,
        mode,
        &Registry::disabled(),
    )
}

/// [`paths_selection`] with search/selection counters recording into
/// `registry`. Counters never influence the output — it stays
/// byte-identical to the uncounted run.
///
/// # Panics
///
/// As [`paths_selection`].
#[must_use]
pub fn paths_selection_counted(
    net: &QuantumNetwork,
    demands: &[Demand],
    capacity: &[u32],
    h: usize,
    max_width: u32,
    mode: SwapMode,
    registry: &Registry,
) -> Vec<CandidatePath> {
    assert!(h > 0, "need at least one candidate per width");
    assert!(max_width > 0, "max width must be positive");
    assert!(
        capacity.len() >= net.node_count(),
        "capacity vector too short"
    );
    let ctx = DescentContext::new(net, capacity, max_width);
    let mut state = DescentState::with_registry(net.node_count(), registry);
    let per_demand: Vec<Vec<Vec<CandidatePath>>> = demands
        .iter()
        .map(|d| demand_candidates(net, d, h, max_width, mode, &ctx, &mut state))
        .collect();
    assemble_width_major(per_demand, max_width)
}

/// Parallel variant of [`paths_selection`]: demands are sharded
/// round-robin over `threads` workers, each with its own search scratch
/// and descent state (the feasibility view and channel tables are shared
/// read-only). Candidate construction evaluates every demand against the
/// *full* capacity (contention is resolved later by Algorithm 3), so
/// demands are independent and the output is bit-identical to the serial
/// version.
///
/// # Panics
///
/// Panics if `h == 0`, `max_width == 0`, `threads == 0`, or `capacity` is
/// shorter than the node count.
#[must_use]
pub fn paths_selection_parallel(
    net: &QuantumNetwork,
    demands: &[Demand],
    capacity: &[u32],
    h: usize,
    max_width: u32,
    mode: SwapMode,
    threads: usize,
) -> Vec<CandidatePath> {
    paths_selection_parallel_counted(
        net,
        demands,
        capacity,
        h,
        max_width,
        mode,
        threads,
        &Registry::disabled(),
    )
}

/// [`paths_selection_parallel`] with counters recording into `registry`.
/// Counter totals are independent of the worker sharding: each demand's
/// counts are a pure function of that demand's search, and atomic adds
/// commute, so any thread count yields the same snapshot.
///
/// # Panics
///
/// As [`paths_selection_parallel`].
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn paths_selection_parallel_counted(
    net: &QuantumNetwork,
    demands: &[Demand],
    capacity: &[u32],
    h: usize,
    max_width: u32,
    mode: SwapMode,
    threads: usize,
    registry: &Registry,
) -> Vec<CandidatePath> {
    assert!(threads > 0, "need at least one worker");
    if threads == 1 || demands.len() <= 1 {
        return paths_selection_counted(net, demands, capacity, h, max_width, mode, registry);
    }
    assert!(h > 0, "need at least one candidate per width");
    assert!(max_width > 0, "max width must be positive");
    assert!(
        capacity.len() >= net.node_count(),
        "capacity vector too short"
    );

    let ctx = DescentContext::new(net, capacity, max_width);
    let ctx = &ctx;
    let mut slots: Vec<Option<Vec<Vec<CandidatePath>>>> = vec![None; demands.len()];
    crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..threads.min(demands.len()))
            .map(|t| {
                scope.spawn(move |_| {
                    let mut state = DescentState::with_registry(net.node_count(), registry);
                    demands
                        .iter()
                        .enumerate()
                        .skip(t)
                        .step_by(threads)
                        .map(|(di, d)| {
                            let cands =
                                demand_candidates(net, d, h, max_width, mode, ctx, &mut state);
                            (di, cands)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            for (di, cands) in handle.join().expect("selection workers must not panic") {
                slots[di] = Some(cands);
            }
        }
    })
    .expect("selection scope must not panic");

    let per_demand = slots
        .into_iter()
        .map(|s| s.expect("every demand was assigned to a worker"))
        .collect();
    assemble_width_major(per_demand, max_width)
}

/// Read-only width-descent context shared by every demand (and every
/// worker): the width-indexed feasibility view over the caller's capacity
/// vector, and per-width channel-success tables.
#[derive(Debug, Clone, Default)]
struct DescentContext {
    feas: WidthFeasibility,
    /// `channel[w - 1][e] = net.channel_success(e, w)` — the same
    /// expression Algorithm 1 evaluates inline, computed once per
    /// (width, edge) instead of once per relaxation.
    channel: Vec<Vec<f64>>,
}

impl DescentContext {
    fn new(net: &QuantumNetwork, capacity: &[u32], max_width: u32) -> Self {
        let mut ctx = DescentContext::default();
        ctx.refresh(net, capacity, max_width);
        ctx
    }

    /// Rebuilds the feasibility view for `capacity` and extends the
    /// channel tables to cover `max_width`. Channel success depends only
    /// on the immutable network, so rows already built are kept — a
    /// persistent [`SelectionEngine`] pays the table cost once, not once
    /// per admission.
    fn refresh(&mut self, net: &QuantumNetwork, capacity: &[u32], max_width: u32) {
        if self.feas.len() != net.node_count() {
            self.feas = WidthFeasibility::new(net.node_count());
        }
        for v in net.graph().node_ids() {
            // Paper line 9: an intermediate switch pins 2w qubits, so it
            // relays width cap / 2; users never relay. Endpoints need w.
            let (relay, endpoint) = node_width_thresholds(net, v, capacity[v.index()]);
            self.feas.set_node(v, relay, endpoint);
        }
        for w in (self.channel.len() as u32 + 1)..=max_width {
            self.channel.push(
                net.graph()
                    .edge_ids()
                    .map(|e| net.channel_success(e, w))
                    .collect(),
            );
        }
    }
}

/// The engine's per-width search log/replay plane. When installed, every
/// search the Yen construction issues is recorded in issue order; a
/// leading prefix of previously recorded results may be *served* in place
/// of searching (partial repair — see [`WidthReuse::Repair`]).
#[derive(Debug, Clone, Default)]
struct ReplayState {
    /// Recorded results served verbatim for ordinals `0..serve.len()`.
    serve: Vec<Option<(Path, Metric)>>,
    /// Every result issued so far this width, served and live alike.
    log: Vec<Option<(Path, Metric)>>,
}

/// Counter handles for the width-descent engine's decision points.
/// Default handles are no-ops; wire real ones with
/// [`SelectionCounters::from_registry`]. Every count is a deterministic
/// function of the selection inputs, independent of worker sharding.
#[derive(Debug, Clone, Default)]
pub struct SelectionCounters {
    /// Searches skipped outright by the reachability certificate.
    pub reach_skips: Counter,
    /// Yen spur searches launched from deviation points.
    pub spur_searches: Counter,
    /// Width slices actually searched (vs served from a cache).
    pub widths_searched: Counter,
}

impl SelectionCounters {
    /// Creates handles named `alg2.reach_skips`, `alg2.spur_searches`,
    /// and `alg2.widths_searched` in `registry`.
    #[must_use]
    pub fn from_registry(registry: &Registry) -> Self {
        if !registry.is_enabled() {
            return SelectionCounters::default();
        }
        SelectionCounters {
            reach_skips: registry.counter("alg2.reach_skips"),
            spur_searches: registry.counter("alg2.spur_searches"),
            widths_searched: registry.counter("alg2.widths_searched"),
        }
    }
}

/// Per-worker mutable width-descent state, reused across demands.
#[derive(Debug, Clone, Default)]
struct DescentState {
    scratch: SearchScratch,
    reach: DescentReach,
    /// Installed only by [`SelectionEngine`]; the batch engines leave it
    /// `None` and pay one predictable branch per probe. Records both the
    /// raw read set and the width's *validity certificate* — the minimal
    /// per-kind answer set the results depend on (see
    /// [`fusion_graph::certificate`]).
    recorder: Option<CertificateRecorder>,
    /// Search log/replay plane; installed per width by
    /// [`SelectionEngine::select_demand`], `None` in the batch engines.
    replay: Option<ReplayState>,
    /// Per-source shared shortest-path trees; opted into by
    /// [`SelectionEngine::enable_spt`], `None` everywhere else.
    spt: Option<Box<SptCache>>,
    counters: SelectionCounters,
}

impl DescentState {
    /// A state whose search and selection counters record into
    /// `registry`. Counter handles are shared atomics, so states cloned
    /// or rebuilt from the same registry accumulate into the same cells
    /// regardless of worker sharding.
    fn with_registry(nodes: usize, registry: &Registry) -> Self {
        let mut scratch = SearchScratch::with_capacity(nodes);
        scratch.counters = SearchCounters::from_registry(registry, "alg2.search");
        DescentState {
            scratch,
            reach: DescentReach::new(),
            recorder: None,
            replay: None,
            spt: None,
            counters: SelectionCounters::from_registry(registry),
        }
    }
}

/// One demand's candidates, grouped per width in descending-width order
/// (`out[i]` holds width `max_width - i`): the width-descent engine.
fn demand_candidates(
    net: &QuantumNetwork,
    demand: &Demand,
    h: usize,
    max_width: u32,
    mode: SwapMode,
    ctx: &DescentContext,
    state: &mut DescentState,
) -> Vec<Vec<CandidatePath>> {
    state
        .reach
        .begin(net.graph(), &ctx.feas, demand.dest, max_width);
    (1..=max_width)
        .rev()
        .map(|width| {
            if width < max_width {
                state.reach.descend(net.graph(), &ctx.feas, width);
            }
            width_candidates(net, demand, h, width, mode, ctx, state)
        })
        .collect()
}

/// One width's candidates under the descent state: Yen over Algorithm 1,
/// filtered and scored with the caller's mode. Shared verbatim by the
/// batch engines and [`SelectionEngine`], which is what makes cached
/// engine output interchangeable with batch output.
fn width_candidates(
    net: &QuantumNetwork,
    demand: &Demand,
    h: usize,
    width: u32,
    mode: SwapMode,
    ctx: &DescentContext,
    state: &mut DescentState,
) -> Vec<CandidatePath> {
    state.counters.widths_searched.inc();
    k_best_paths_descent(net, demand, h, width, ctx, state)
        .into_iter()
        .filter_map(|path| {
            let wp = WidthedPath::uniform(path, width);
            let metric = mode.score(net, &wp);
            if metric > Metric::ZERO {
                Some(CandidatePath {
                    demand: demand.id,
                    path: wp.path,
                    width,
                    metric,
                })
            } else {
                None
            }
        })
        .collect()
}

/// Flattens per-demand, per-width candidate groups into the pipeline's
/// canonical order: width-major (descending), demand order within a width.
fn assemble_width_major(
    per_demand: Vec<Vec<Vec<CandidatePath>>>,
    max_width: u32,
) -> Vec<CandidatePath> {
    let mut per_demand = per_demand;
    let mut out = Vec::new();
    for wi in 0..max_width as usize {
        for groups in &mut per_demand {
            out.append(&mut groups[wi]);
        }
    }
    out
}

/// Width-`width` largest-rate search from `source` to the demand's
/// destination under the descent state: preconditions and feasibility
/// rules are exactly those of [`largest_rate_path_with`] (the width view
/// encodes them — `endpoint_feasible` is `capacity >= w`,
/// `relay_feasible` is "switch with `capacity >= 2w`"), but the search
/// is goal-directed (pauses when the destination settles), reads channel
/// successes from the per-width table, and is skipped outright when the
/// reachability view certifies it cannot succeed.
fn descent_search(
    net: &QuantumNetwork,
    source: NodeId,
    dest: NodeId,
    width: u32,
    constraints: &PathConstraints,
    ctx: &DescentContext,
    state: &mut DescentState,
    use_spt: bool,
) -> Option<(Path, Metric)> {
    debug_assert_eq!(state.reach.width(), width, "descent out of step");
    if source == dest {
        return None;
    }
    let DescentState {
        scratch,
        reach,
        recorder,
        spt,
        counters,
        ..
    } = state;
    if let Some(r) = recorder.as_mut() {
        // The endpoint checks below read both endpoints' thresholds; a
        // *blocked* answer is tracked in the certificate (it decided the
        // outcome), a feasible one stays raw-only until the search
        // returns a path through it.
        r.read_endpoint(source, ctx.feas.endpoint_feasible(source, width));
        r.read_endpoint(dest, ctx.feas.endpoint_feasible(dest, width));
    }
    // Paper line 2: endpoints must hold at least `w` qubits.
    if !ctx.feas.endpoint_feasible(source, width) || !ctx.feas.endpoint_feasible(dest, width) {
        return None;
    }
    if constraints.banned_nodes.contains(&source) || constraints.banned_nodes.contains(&dest) {
        return None;
    }
    // Monotone-feasibility certificate: banned nodes and hops only shrink
    // the graph, so an unreachable destination here is unreachable in the
    // constrained search too — skip it without exploring anything.
    if !reach.can_reach(source) {
        counters.reach_skips.inc();
        // The skip's raw dependency set is the whole probed region
        // R ∪ ∂R, but the *negative* answer rests only on the blocked
        // frontier staying blocked (any path into the unexplored side
        // must cross it), so only ∂R's relay answers enter the
        // certificate. Users on the frontier are excluded: their relay
        // answer is 0 at every capacity and can never flip.
        if let Some(r) = recorder.as_mut() {
            r.fold_reach(
                reach.reached_nodes(),
                reach.blocked_frontier().filter(|&v| net.is_switch(v)),
            );
        }
        return None;
    }

    // Unconstrained first searches may be answered from the per-source
    // shared SPT: same bytes (the tree is a paused run of exactly this
    // search's relaxation sequence over the dest-agnostic subgraph),
    // usually far fewer settles.
    if use_spt && constraints.banned_nodes.is_empty() && constraints.banned_hops.is_empty() {
        if let Some(spt) = spt.as_deref_mut() {
            let result = spt.serve(net, ctx, width, source, dest, recorder.as_mut());
            if let (Some(r), Some((p, _))) = (recorder.as_mut(), result.as_ref()) {
                r.commit_success(p);
            }
            return result;
        }
    }

    let q = net.swap_success();
    let feas = &ctx.feas;
    let channel = &ctx.channel[(width - 1) as usize];
    let mut rec = recorder.as_mut();
    let result = max_product_resume(
        scratch,
        net.graph(),
        source,
        |from, e| {
            let to = e.other(from);
            if constraints.banned_nodes.contains(&to) || constraints.hop_banned(from, to) {
                return None;
            }
            // Entering `to` as an intermediate pins 2w qubits there; only
            // the destination gets away with w (paper line 9). Users other
            // than the destination cannot relay at all — which is also why
            // a user's relay read can never enter the certificate
            // (`can_flip = false`).
            if to != dest {
                if let Some(r) = rec.as_deref_mut() {
                    r.read_relay(to, feas.relay_feasible(to, width), net.is_switch(to));
                }
                if !feas.relay_feasible(to, width) {
                    return None;
                }
            }
            Some(channel[e.id.index()])
        },
        |via| {
            // Transit through a node costs one fusion; users never relay.
            net.is_switch(via).then_some(q)
        },
    )
    .run_to(dest);
    // A successful search's result depends on its own path's thresholds:
    // endpoint answers at the ends, relay answers at the intermediates.
    if let (Some(r), Some((p, _))) = (recorder.as_mut(), result.as_ref()) {
        r.commit_success(p);
    }
    result
}

/// Issues one of a width's searches through the replay plane: an ordinal
/// inside the replay prefix is served from the recorded log verbatim (no
/// graph work, no reads — validity is the caller's contract, enforced by
/// the ordinal-stratified footprint), anything else searches live and is
/// appended to the log. With no replay installed this is a plain
/// [`descent_search`], byte for byte and counter for counter.
#[allow(clippy::too_many_arguments)]
fn driven_search(
    net: &QuantumNetwork,
    source: NodeId,
    dest: NodeId,
    width: u32,
    constraints: &PathConstraints,
    ctx: &DescentContext,
    state: &mut DescentState,
    is_spur: bool,
) -> Option<(Path, Metric)> {
    if let Some(rp) = state.replay.as_mut() {
        let ordinal = rp.log.len();
        if ordinal < rp.serve.len() {
            let served = rp.serve[ordinal].clone();
            rp.log.push(served.clone());
            return served;
        }
    }
    if is_spur {
        state.counters.spur_searches.inc();
    }
    let ordinal = state.replay.as_ref().map_or(0, |rp| rp.log.len() as u32);
    if let Some(r) = state.recorder.as_mut() {
        r.set_ordinal(ordinal);
    }
    let result = descent_search(net, source, dest, width, constraints, ctx, state, !is_spur);
    if let Some(rp) = state.replay.as_mut() {
        rp.log.push(result.clone());
    }
    result
}

/// Yen's algorithm over Algorithm 1 for one demand at one width, driven
/// by the width-descent search. The deviation structure is identical to
/// [`k_best_paths`]; only how each underlying query is answered differs.
fn k_best_paths_descent(
    net: &QuantumNetwork,
    demand: &Demand,
    h: usize,
    width: u32,
    ctx: &DescentContext,
    state: &mut DescentState,
) -> Vec<Path> {
    let base = PathConstraints::default();
    let Some((first, metric)) =
        driven_search(net, demand.source, demand.dest, width, &base, ctx, state, false)
    else {
        return Vec::new();
    };

    // Pending deviation: discovery metric, path, and the banned hops
    // inherited along its deviation branch — the paper's E'.
    type Pending = (Metric, Path, HashSet<(NodeId, NodeId)>);
    let mut accepted: Vec<(Path, Metric)> = Vec::new();
    let mut queue: Vec<Pending> = vec![(metric, first, HashSet::new())];
    let mut seen: HashSet<Vec<NodeId>> = HashSet::new();

    while accepted.len() < h {
        // Pop the best pending candidate (deterministic tie-break on the
        // node sequence).
        let Some(best_idx) = queue
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.0.cmp(&b.0).then_with(|| b.1.nodes().cmp(a.1.nodes())))
            .map(|(i, _)| i)
        else {
            break;
        };
        let (_, path, banned) = queue.swap_remove(best_idx);
        if !seen.insert(path.nodes().to_vec()) {
            continue;
        }
        accepted.push((path.clone(), Metric::ZERO));
        if accepted.len() >= h {
            break;
        }

        // Deviations at every hop of the newly accepted path.
        for i in 0..path.hops() {
            let spur_node = path.nodes()[i];
            let root = path.prefix(i);

            // The paper's tuples carry E' and extend it with the deviated
            // edge e; the accepted-path bans below are recomputed per
            // deviation (classic Yen) and not inherited.
            let mut inherited = banned.clone();
            inherited.insert(PathConstraints::hop_key(
                path.nodes()[i],
                path.nodes()[i + 1],
            ));

            let mut cons = PathConstraints {
                banned_hops: inherited.clone(),
                ..Default::default()
            };
            // Classic Yen: also ban the next hop of every accepted path
            // sharing this root, so deviations cannot regenerate them.
            for (acc, _) in &accepted {
                if acc.len() > i + 1 && acc.nodes()[..=i] == *root.nodes() {
                    cons.ban_hop(acc.nodes()[i], acc.nodes()[i + 1]);
                }
            }
            for &n in &root.nodes()[..i] {
                cons.ban_node(n);
            }

            let Some((spur, _)) =
                driven_search(net, spur_node, demand.dest, width, &cons, ctx, state, true)
            else {
                continue;
            };
            let combined = root.join(&spur);
            if seen.contains(combined.nodes()) {
                continue;
            }
            if queue.iter().any(|(_, p, _)| p == &combined) {
                continue;
            }
            // Score the whole deviation with the discovery metric.
            let m = path_rate(net, &combined, width);
            if m == Metric::ZERO {
                continue;
            }
            queue.push((m, combined, inherited));
        }

        // Paper line 14: bound the frontier to h outstanding paths.
        while queue.len() + accepted.len() > h {
            let Some(worst_idx) = queue
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.0.cmp(&b.0).then_with(|| b.1.nodes().cmp(a.1.nodes())))
                .map(|(i, _)| i)
            else {
                break;
            };
            queue.swap_remove(worst_idx);
        }
    }
    accepted.into_iter().map(|(p, _)| p).collect()
}

/// The per-call knobs of [`SelectionEngine::select_demand`]: the
/// candidate budget, the width bound the descent starts from, and the
/// swap mode scoring candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelectionQuery {
    /// Candidate paths per (demand, width) — Algorithm 2's `h`.
    pub h: usize,
    /// Largest channel width the descent starts from.
    pub max_width: u32,
    /// Swap mode scoring the candidates.
    pub mode: SwapMode,
}

/// One width's slice of a [`SelectionEngine::select_demand`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectedWidth {
    /// The channel width this slice was built for.
    pub width: u32,
    /// The width's candidates, in the engine's canonical order.
    pub candidates: Vec<CandidatePath>,
    /// For recomputed (or repaired) widths, the slice's *validity
    /// certificate*: per node, the per-kind (relay/endpoint) ordinal of
    /// the first search whose result depends on that answer, sorted by
    /// node — a subset of the raw read set (see
    /// [`fusion_graph::certificate`]). As long as no tracked answer in it
    /// flips at this width, re-running the construction yields the same
    /// bytes; answers read but untracked may change freely. `None` when
    /// the candidates came back as [`WidthReuse::Full`]. After a repair,
    /// answers owned by the served prefix are *not* re-tracked here; the
    /// caller merges this with the prior certificate's sub-`served`
    /// strata.
    pub footprint: Option<Vec<CertEntry>>,
    /// Number of distinct nodes whose feasibility was read *live* while
    /// constructing `candidates` — the classic (pre-certificate)
    /// footprint cardinality, kept for telemetry comparability. `0` for
    /// [`WidthReuse::Full`] slices.
    pub raw_reads: u32,
    /// Every search result of the width's construction, in issue order
    /// (`log[0]` is the first path, then each Yen spur) — the recorded
    /// deviation state a later [`WidthReuse::Repair`] replays. `None`
    /// for [`WidthReuse::Full`] slices.
    pub log: Option<Vec<Option<(Path, Metric)>>>,
    /// How many leading `log` entries were served from a repair seed
    /// rather than searched; `0` for a from-scratch recompute.
    pub served: u32,
}

/// Per-width verdict the reuse closure hands
/// [`SelectionEngine::select_demand`].
#[derive(Debug, Clone, PartialEq)]
pub enum WidthReuse {
    /// The cached candidates are valid as-is: served byte-for-byte,
    /// nothing searched.
    Full(Vec<CandidatePath>),
    /// The width's cached construction is damaged but not dead: replay
    /// the still-valid prefix of its search log, search live from there.
    Repair(RepairSeed),
    /// Nothing cached (or damaged beyond repair): search from scratch.
    Miss,
}

/// Seed for a partial repair (see [`WidthReuse::Repair`]): the recorded
/// search log of the width's previous construction plus how much of it
/// is still exactly reproducible.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairSeed {
    /// The previous construction's per-search results, issue order.
    pub log: Vec<Option<(Path, Metric)>>,
    /// Leading `log` entries whose read sets are untouched; the engine
    /// serves exactly `min(intact, log.len())` entries.
    pub intact: u32,
}

/// Counter handles for the per-source shared shortest-path-tree cache.
/// Default handles are no-ops; wire real ones with
/// [`SptCounters::from_registry`]. Counts never influence routing output.
#[derive(Debug, Clone, Default)]
pub struct SptCounters {
    /// First-path searches routed through the SPT cache.
    pub queries: Counter,
    /// Queries that found a still-valid parked tree to resume.
    pub hits: Counter,
    /// Parked trees discarded because a recorded relay answer flipped.
    pub invalidated: Counter,
    /// Settled nodes inherited from parked trees instead of re-searched.
    pub shared_settles: Counter,
}

impl SptCounters {
    /// Creates handles named `alg2.spt.{queries,hits,invalidated,
    /// shared_settles}` in `registry`.
    #[must_use]
    pub fn from_registry(registry: &Registry) -> Self {
        if !registry.is_enabled() {
            return SptCounters::default();
        }
        SptCounters {
            queries: registry.counter("alg2.spt.queries"),
            hits: registry.counter("alg2.spt.hits"),
            invalidated: registry.counter("alg2.spt.invalidated"),
            shared_settles: registry.counter("alg2.spt.shared_settles"),
        }
    }
}

/// One parked per-`(source, width)` max-product run over the dest-agnostic
/// switch subgraph, resumable where it paused.
#[derive(Debug, Clone)]
struct SptTree {
    snapshot: ResumeSnapshot,
    /// Settle order (what the resume capture needs back).
    order: Vec<NodeId>,
    /// Every switch whose relay answer the tree's relaxations consulted —
    /// the tree's exact validity dependency set.
    read_set: HashSet<NodeId>,
    /// Flip-clock value the tree was last verified/extended at.
    stamp: u64,
    /// LRU clock value of the last serve.
    last_used: u64,
}

/// A per-source shortest-path-tree cache serving the engine's
/// unconstrained first-path searches (see
/// [`SelectionEngine::enable_spt`]).
///
/// The key idea: an unconstrained width-`w` search's relaxation plane is
/// *destination-agnostic* except at the destination itself — every
/// non-destination target is gated on `relay_feasible(to, w)`, and users
/// (relay width 0) are never relaxed at all. So one paused
/// [`max_product_resume`] run per `(source, width)` over switch targets
/// only is shared by every destination: a query folds the destination's
/// incident relaxations in on top (in settle order, with the plain
/// search's exact improvement rule) and stops precisely where the
/// goal-directed search would have settled the destination. Trees are
/// parked as [`ResumeSnapshot`]s and extended on later, deeper queries —
/// the restored run relaxes in the original sequence, so results stay
/// byte-identical to searching from scratch.
///
/// Validity follows the same generation-stamp discipline as the serve
/// layer's candidate cache: every relay answer a tree's construction read
/// is in its `read_set`; `SptCache::note_node_delta` advances a flip
/// clock and records, per width band, the tick at which each node's relay
/// answer last flipped; a tree is resumable iff none of its reads flipped
/// after its stamp.
#[derive(Debug, Clone, Default)]
pub struct SptCache {
    trees: HashMap<(NodeId, u32), SptTree>,
    scratch: SearchScratch,
    /// `last_flip[w - 1][node]` = flip-clock tick of the most recent
    /// relay-answer flip of `node` at width `w`; rows grow lazily as
    /// widths are first queried.
    last_flip: Vec<Vec<u64>>,
    /// Flip clock: advances once per reported capacity delta.
    tick: u64,
    /// LRU clock: advances once per serve.
    use_clock: u64,
    counters: SptCounters,
}

impl SptCache {
    /// Parked-tree cap; eviction is deterministic (oldest `last_used`,
    /// ties on key), so runs are reproducible.
    const MAX_TREES: usize = 512;

    fn ensure_width(&mut self, nodes: usize, width: u32) {
        while self.last_flip.len() < width as usize {
            // A fresh row (all zeros) is sound: no tree at this width can
            // exist yet, and new trees stamp at the current tick.
            self.last_flip.push(vec![0; nodes]);
        }
    }

    /// Records one applied capacity delta `old -> new` at `node`: bumps
    /// the flip clock and stamps every width band whose relay answer at
    /// `node` the delta flips. Endpoint-threshold flips are irrelevant —
    /// trees only ever read relay answers (the engine records endpoint
    /// reads per slice, outside the tree).
    fn note_node_delta(&mut self, net: &QuantumNetwork, node: NodeId, old: u32, new: u32) {
        self.tick += 1;
        let (relay_old, _) = node_width_thresholds(net, node, old);
        let (relay_new, _) = node_width_thresholds(net, node, new);
        if relay_old == relay_new {
            return;
        }
        let lo = relay_old.min(relay_new);
        let hi = relay_old.max(relay_new);
        for w in 1..=self.last_flip.len() as u32 {
            // `relay >= w` changes exactly for lo < w <= hi — the same
            // band arithmetic the serve cache's `flips` uses.
            if lo < w && w <= hi {
                self.last_flip[(w - 1) as usize][node.index()] = self.tick;
            }
        }
    }

    /// Answers one unconstrained width-`width` first-path query from
    /// `source` to `dest`, byte-identical to the plain goal-directed
    /// [`max_product_resume`]`.run_to(dest)` the engine would otherwise
    /// issue. Folds the tree's relay reads into `recorder` (a superset of
    /// the plain search's reads restricted to switches; user relay reads
    /// are provably answer-constant and omitted).
    fn serve(
        &mut self,
        net: &QuantumNetwork,
        ctx: &DescentContext,
        width: u32,
        source: NodeId,
        dest: NodeId,
        recorder: Option<&mut CertificateRecorder>,
    ) -> Option<(Path, Metric)> {
        self.ensure_width(net.node_count(), width);
        self.counters.queries.inc();
        let key = (source, width);
        let row = &self.last_flip[(width - 1) as usize];
        let parked = match self.trees.remove(&key) {
            Some(t) if t.read_set.iter().all(|v| row[v.index()] <= t.stamp) => {
                self.counters.hits.inc();
                self.counters.shared_settles.add(t.order.len() as u64);
                Some(t)
            }
            Some(_) => {
                self.counters.invalidated.inc();
                None
            }
            None => None,
        };
        let (snapshot, mut order, mut read_set) = match parked {
            Some(SptTree {
                snapshot,
                order,
                read_set,
                ..
            }) => (Some(snapshot), order, read_set),
            None => (None, Vec::new(), HashSet::new()),
        };

        let graph = net.graph();
        let q = net.swap_success();
        let feas = &ctx.feas;
        let channel = &ctx.channel[(width - 1) as usize];
        let reads = &mut read_set;
        let ef = move |from, e: fusion_graph::EdgeRef<'_, crate::network::EdgeProps>| {
            let to = e.other(from);
            if !net.is_switch(to) {
                // Dest-agnostic tree: non-switch targets are never
                // relaxed into the tree — each query folds its own
                // destination in via the overlay below. Sound because a
                // user's relay answer is 0 at every capacity: the plain
                // search reads it but the answer can never flip.
                return None;
            }
            reads.insert(to);
            if !feas.relay_feasible(to, width) {
                return None;
            }
            Some(channel[e.id.index()])
        };
        let tf = |via: NodeId| net.is_switch(via).then_some(q);
        let mut run = match &snapshot {
            Some(s) => max_product_restore(&mut self.scratch, graph, s, ef, tf),
            None => max_product_resume(&mut self.scratch, graph, source, ef, tf),
        };

        // Destination overlay: replays the plain search's dest
        // relaxations (same settle order, same first-set-then-strict-gain
        // improvement rule, same f64 expression) without touching the
        // shared tree.
        let mut best = 0.0_f64;
        let mut pred: Option<NodeId> = None;
        let fold = |u: NodeId, dist_u: f64, best: &mut f64, pred: &mut Option<NodeId>| {
            let through = if u == source { 1.0 } else { q };
            for e in graph.incident_edges(u) {
                if e.other(u) != dest {
                    continue;
                }
                let nm = dist_u * through * channel[e.id.index()];
                if pred.is_none() || nm > *best {
                    *best = nm;
                    *pred = Some(u);
                }
            }
        };
        for &u in &order {
            let d = run.label(u).expect("settled nodes carry final labels");
            fold(u, d, &mut best, &mut pred);
        }

        let goal = loop {
            if run.is_settled(dest) {
                // In-tree destination (relay-feasible switch): the tree
                // itself settled it, exactly as the plain search would.
                let d = run.label(dest).expect("settled dest is labeled");
                break (d > 0.0).then(|| {
                    let path = run.path_to(dest).expect("settled dest has a path");
                    (path, Metric::new(d))
                });
            }
            let next = run.peek_next();
            let stop = match next {
                // Every remaining frontier entry ranks strictly below
                // dest's would-be heap entry: the plain goal-directed
                // search would pop — and settle — dest next.
                Some((m, u)) => (m, u) < (Metric::new(best), dest),
                None => true,
            };
            if stop {
                break (best > 0.0)
                    .then_some(pred)
                    .flatten()
                    .map(|p| {
                        let mut nodes = run
                            .path_to(p)
                            .expect("settled predecessor has a path")
                            .nodes()
                            .to_vec();
                        nodes.push(dest);
                        (Path::new(nodes), Metric::new(best))
                    });
            }
            let (m, u) = run.settle_one().expect("peeked entry settles");
            order.push(u);
            fold(u, m.value(), &mut best, &mut pred);
        };

        let snapshot = run.capture(&order);
        drop(run);
        if let Some(r) = recorder {
            // Replay the tree's relay reads through the certificate
            // classifier (order-independent: the recorder's drain sorts,
            // and every read this width shares one ordinal): blocked
            // answers are tracked, feasible ones stay raw-only unless the
            // caller commits a returned path through them. All members
            // are switches — the tree never relaxes users.
            for &v in read_set.iter() {
                r.read_relay(v, feas.relay_feasible(v, width), true);
            }
        }
        self.use_clock += 1;
        self.trees.insert(
            key,
            SptTree {
                snapshot,
                order,
                read_set,
                stamp: self.tick,
                last_used: self.use_clock,
            },
        );
        if self.trees.len() > Self::MAX_TREES {
            let victim = self
                .trees
                .keys()
                .map(|&(s, w)| {
                    let t = &self.trees[&(s, w)];
                    (t.last_used, s, w)
                })
                .min()
                .map(|(_, s, w)| (s, w))
                .expect("cache over cap is nonempty");
            self.trees.remove(&victim);
        }
        goal
    }
}

/// A persistent width-descent engine for callers that route demands one
/// at a time against changing capacity vectors — the serve layer's
/// admission path.
///
/// Each width's candidate set is a pure function of the width's feasible
/// subgraph (plus the immutable network and the demand endpoints), so a
/// caller that caches per-(pair, width) candidate sets keyed by their
/// recorded footprints can skip any width whose dependency set is
/// untouched by intervening capacity deltas. The engine supplies both
/// halves of that contract: it consults a reuse closure per width, and
/// reports the footprint of every width it recomputes.
///
/// With reuse always declined, the concatenated output equals the
/// single-demand [`paths_selection`] result exactly — same code path —
/// which the serve-layer differential oracle
/// (`crates/serve/tests/incremental_oracle.rs`) locks down end to end.
#[derive(Debug, Clone, Default)]
pub struct SelectionEngine {
    ctx: DescentContext,
    state: DescentState,
}

impl SelectionEngine {
    /// Creates an empty engine. An engine must only ever be used with
    /// one network instance (channel-success tables are memoized), but
    /// capacity vectors may change freely between calls.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Routes this engine's search and selection counters into
    /// `registry` (under `alg2.*`). Call once after construction; a
    /// disabled registry restores free no-op handles.
    pub fn set_registry(&mut self, registry: &Registry) {
        self.state.scratch.counters = SearchCounters::from_registry(registry, "alg2.search");
        self.state.counters = SelectionCounters::from_registry(registry);
        if let Some(spt) = self.state.spt.as_deref_mut() {
            spt.counters = SptCounters::from_registry(registry);
        }
    }

    /// Opts this engine into the per-source shared shortest-path-tree
    /// cache (see [`SptCache`]): unconstrained first searches are served
    /// from a paused, per-`(source, width)` resumable Dijkstra run that
    /// is extended on demand and revalidated against relay-band flip
    /// stamps, instead of re-settling the shared prefix from scratch.
    /// Output bytes are unaffected; `alg2.spt.*` counters record into
    /// `registry`.
    pub fn enable_spt(&mut self, registry: &Registry) {
        let mut spt = Box::<SptCache>::default();
        spt.counters = SptCounters::from_registry(registry);
        self.state.spt = Some(spt);
    }

    /// Feeds one applied residual-capacity delta `old -> new` at `node`
    /// into the SPT validity clock: any tree whose construction read a
    /// relay answer the delta flips is invalidated on next use. Callers
    /// that enable the SPT cache **must** report every residual change
    /// here (the serve layer does, from the same hook that drives its
    /// candidate-cache invalidation). No-op without the SPT cache.
    pub fn note_node_delta(&mut self, net: &QuantumNetwork, node: NodeId, old: u32, new: u32) {
        if let Some(spt) = self.state.spt.as_deref_mut() {
            spt.note_node_delta(net, node, old, new);
        }
    }

    /// Runs the width descent for one demand against `capacity`,
    /// consulting `reuse` per width: [`WidthReuse::Full`] slices are
    /// returned as-is without searching, [`WidthReuse::Repair`] slices
    /// replay the valid prefix of their recorded search log and search
    /// live from the first damaged ordinal, and [`WidthReuse::Miss`]
    /// slices are built from scratch. A `Full` verdict is valid iff no
    /// node in the slice's recorded footprint has changed a feasibility
    /// answer at its width since; a `Repair(intact)` verdict iff that
    /// holds restricted to footprint strata below `intact`. When every
    /// width is `Full`, nothing is rebuilt at all (no feasibility view,
    /// no reachability, no searches).
    ///
    /// # Panics
    ///
    /// Panics if `query.h == 0`, `query.max_width == 0`, or `capacity`
    /// is shorter than the node count.
    pub fn select_demand(
        &mut self,
        net: &QuantumNetwork,
        demand: &Demand,
        capacity: &[u32],
        query: SelectionQuery,
        mut reuse: impl FnMut(u32) -> WidthReuse,
    ) -> Vec<SelectedWidth> {
        let SelectionQuery { h, max_width, mode } = query;
        assert!(h > 0, "need at least one candidate per width");
        assert!(max_width > 0, "max width must be positive");
        assert!(
            capacity.len() >= net.node_count(),
            "capacity vector too short"
        );
        let slices: Vec<(u32, WidthReuse)> =
            (1..=max_width).rev().map(|w| (w, reuse(w))).collect();
        if slices.iter().all(|(_, r)| matches!(r, WidthReuse::Full(_))) {
            // Full hit: the admission costs only the merge downstream.
            return slices
                .into_iter()
                .map(|(width, r)| {
                    let WidthReuse::Full(candidates) = r else {
                        unreachable!("all slices checked Full")
                    };
                    SelectedWidth {
                        width,
                        candidates,
                        footprint: None,
                        raw_reads: 0,
                        log: None,
                        served: 0,
                    }
                })
                .collect();
        }
        let SelectionEngine { ctx, state } = self;
        ctx.refresh(net, capacity, max_width);
        state
            .reach
            .begin(net.graph(), &ctx.feas, demand.dest, max_width);
        slices
            .into_iter()
            .map(|(width, cached)| {
                if width < max_width {
                    state.reach.descend(net.graph(), &ctx.feas, width);
                }
                match cached {
                    WidthReuse::Full(candidates) => SelectedWidth {
                        width,
                        candidates,
                        footprint: None,
                        raw_reads: 0,
                        log: None,
                        served: 0,
                    },
                    verdict => {
                        let serve = match verdict {
                            WidthReuse::Repair(seed) => {
                                let keep = (seed.intact as usize).min(seed.log.len());
                                let mut s = seed.log;
                                s.truncate(keep);
                                s
                            }
                            _ => Vec::new(),
                        };
                        let served =
                            u32::try_from(serve.len()).expect("log length fits u32");
                        state.replay = Some(ReplayState {
                            serve,
                            log: Vec::new(),
                        });
                        state
                            .recorder
                            .get_or_insert_with(CertificateRecorder::default)
                            .begin(net.node_count());
                        let candidates = width_candidates(net, demand, h, width, mode, ctx, state);
                        let recorder =
                            state.recorder.as_mut().expect("recorder installed above");
                        let raw_reads =
                            u32::try_from(recorder.raw_len()).expect("read count fits u32");
                        let footprint = recorder.drain();
                        let log = state.replay.take().expect("replay installed above").log;
                        SelectedWidth {
                            width,
                            candidates,
                            footprint: Some(footprint),
                            raw_reads,
                            log: Some(log),
                            served,
                        }
                    }
                }
            })
            .collect()
    }
}

/// The original per-width sweep, retained verbatim as the differential
/// oracle for the width-descent engine: every width runs an independent
/// exhaustive Yen/Dijkstra search. Same contract and output as
/// [`paths_selection`], at the cost the width descent exists to avoid.
///
/// # Panics
///
/// Panics if `h == 0` or `max_width == 0`.
#[must_use]
pub fn paths_selection_reference(
    net: &QuantumNetwork,
    demands: &[Demand],
    capacity: &[u32],
    h: usize,
    max_width: u32,
    mode: SwapMode,
) -> Vec<CandidatePath> {
    assert!(h > 0, "need at least one candidate per width");
    assert!(max_width > 0, "max width must be positive");
    let mut scratch = SearchScratch::with_capacity(net.node_count());
    let per_demand: Vec<Vec<Vec<CandidatePath>>> = demands
        .iter()
        .map(|d| demand_candidates_reference(net, d, capacity, h, max_width, mode, &mut scratch))
        .collect();
    assemble_width_major(per_demand, max_width)
}

/// One demand's candidates under the reference per-width sweep.
fn demand_candidates_reference(
    net: &QuantumNetwork,
    demand: &Demand,
    capacity: &[u32],
    h: usize,
    max_width: u32,
    mode: SwapMode,
    scratch: &mut SearchScratch,
) -> Vec<Vec<CandidatePath>> {
    (1..=max_width)
        .rev()
        .map(|width| {
            k_best_paths(net, demand, capacity, h, width, scratch)
                .into_iter()
                .filter_map(|path| {
                    let wp = WidthedPath::uniform(path.clone(), width);
                    let metric = mode.score(net, &wp);
                    (metric > Metric::ZERO).then_some(CandidatePath {
                        demand: demand.id,
                        path,
                        width,
                        metric,
                    })
                })
                .collect()
        })
        .collect()
}

/// Yen's algorithm over Algorithm 1 for one demand at one width — the
/// reference formulation with exhaustive per-query searches.
fn k_best_paths(
    net: &QuantumNetwork,
    demand: &Demand,
    capacity: &[u32],
    h: usize,
    width: u32,
    scratch: &mut SearchScratch,
) -> Vec<Path> {
    let base = PathConstraints::default();
    let Some((first, metric)) = largest_rate_path_with(
        scratch,
        net,
        demand.source,
        demand.dest,
        width,
        capacity,
        &base,
    ) else {
        return Vec::new();
    };

    // Pending deviation: discovery metric, path, and the banned hops
    // inherited along its deviation branch — the paper's E'.
    type Pending = (Metric, Path, HashSet<(NodeId, NodeId)>);
    let mut accepted: Vec<(Path, Metric)> = Vec::new();
    let mut queue: Vec<Pending> = vec![(metric, first, HashSet::new())];
    let mut seen: HashSet<Vec<NodeId>> = HashSet::new();

    while accepted.len() < h {
        // Pop the best pending candidate (deterministic tie-break on the
        // node sequence).
        let Some(best_idx) = queue
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.0.cmp(&b.0).then_with(|| b.1.nodes().cmp(a.1.nodes())))
            .map(|(i, _)| i)
        else {
            break;
        };
        let (_, path, banned) = queue.swap_remove(best_idx);
        if !seen.insert(path.nodes().to_vec()) {
            continue;
        }
        accepted.push((path.clone(), Metric::ZERO));
        if accepted.len() >= h {
            break;
        }

        // Deviations at every hop of the newly accepted path.
        for i in 0..path.hops() {
            let spur_node = path.nodes()[i];
            let root = path.prefix(i);

            // The paper's tuples carry E' and extend it with the deviated
            // edge e; the accepted-path bans below are recomputed per
            // deviation (classic Yen) and not inherited.
            let mut inherited = banned.clone();
            inherited.insert(PathConstraints::hop_key(
                path.nodes()[i],
                path.nodes()[i + 1],
            ));

            let mut cons = PathConstraints {
                banned_hops: inherited.clone(),
                ..Default::default()
            };
            // Classic Yen: also ban the next hop of every accepted path
            // sharing this root, so deviations cannot regenerate them.
            for (acc, _) in &accepted {
                if acc.len() > i + 1 && acc.nodes()[..=i] == *root.nodes() {
                    cons.ban_hop(acc.nodes()[i], acc.nodes()[i + 1]);
                }
            }
            for &n in &root.nodes()[..i] {
                cons.ban_node(n);
            }

            let Some((spur, _)) = largest_rate_path_with(
                scratch,
                net,
                spur_node,
                demand.dest,
                width,
                capacity,
                &cons,
            ) else {
                continue;
            };
            let combined = root.join(&spur);
            if seen.contains(combined.nodes()) {
                continue;
            }
            if queue.iter().any(|(_, p, _)| p == &combined) {
                continue;
            }
            // Score the whole deviation with the discovery metric.
            let m = path_rate(net, &combined, width);
            if m == Metric::ZERO {
                continue;
            }
            queue.push((m, combined, inherited));
        }

        // Paper line 14: bound the frontier to h outstanding paths.
        while queue.len() + accepted.len() > h {
            let Some(worst_idx) = queue
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.0.cmp(&b.0).then_with(|| b.1.nodes().cmp(a.1.nodes())))
                .map(|(i, _)| i)
            else {
                break;
            };
            queue.swap_remove(worst_idx);
        }
    }
    accepted.into_iter().map(|(p, _)| p).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::DemandId;

    /// Three disjoint routes of increasing length between one user pair.
    fn triple_route() -> (QuantumNetwork, Demand, Vec<NodeId>) {
        let mut b = QuantumNetwork::builder();
        let s = b.user(0.0, 0.0);
        let d = b.user(10.0, 0.0);
        let a = b.switch(1.0, 1.0, 10);
        let x1 = b.switch(1.0, 0.0, 10);
        let x2 = b.switch(2.0, 0.0, 10);
        let y1 = b.switch(1.0, -1.0, 10);
        let y2 = b.switch(2.0, -1.0, 10);
        let y3 = b.switch(3.0, -1.0, 10);
        for (u, v, len) in [
            // Route A: 2 hops through `a`.
            (s, a, 1_000.0),
            (a, d, 1_000.0),
            // Route B: 3 hops.
            (s, x1, 1_000.0),
            (x1, x2, 1_000.0),
            (x2, d, 1_000.0),
            // Route C: 4 hops.
            (s, y1, 1_000.0),
            (y1, y2, 1_000.0),
            (y2, y3, 1_000.0),
            (y3, d, 1_000.0),
        ] {
            b.link_with_length(u, v, len).unwrap();
        }
        let mut net = b.build();
        net.set_swap_success(0.9);
        let demand = Demand::new(DemandId::new(0), s, d);
        (net, demand, vec![s, d, a, x1, x2, y1, y2, y3])
    }

    #[test]
    fn finds_k_paths_in_rate_order() {
        let (net, demand, n) = triple_route();
        let caps = net.capacities();
        let paths = k_best_paths(&net, &demand, &caps, 3, 1, &mut SearchScratch::new());
        assert_eq!(paths.len(), 3);
        assert_eq!(paths[0].nodes(), &[n[0], n[2], n[1]], "2-hop route first");
        assert_eq!(paths[1].hops(), 3);
        assert_eq!(paths[2].hops(), 4);
        // Rates must be non-increasing.
        let rates: Vec<f64> = paths
            .iter()
            .map(|p| path_rate(&net, p, 1).value())
            .collect();
        assert!(rates.windows(2).all(|w| w[0] >= w[1] - 1e-12));
    }

    #[test]
    fn h_bounds_output() {
        let (net, demand, _) = triple_route();
        let caps = net.capacities();
        let mut scratch = SearchScratch::new();
        assert_eq!(
            k_best_paths(&net, &demand, &caps, 1, 1, &mut scratch).len(),
            1
        );
        assert_eq!(
            k_best_paths(&net, &demand, &caps, 2, 1, &mut scratch).len(),
            2
        );
        // Only 3 loopless routes exist.
        assert_eq!(
            k_best_paths(&net, &demand, &caps, 10, 1, &mut scratch).len(),
            3
        );
    }

    #[test]
    fn paths_are_distinct_and_loopless() {
        let (net, demand, _) = triple_route();
        let caps = net.capacities();
        let paths = k_best_paths(&net, &demand, &caps, 10, 2, &mut SearchScratch::new());
        let mut seen = HashSet::new();
        for p in &paths {
            assert!(seen.insert(p.nodes().to_vec()), "duplicate path {p}");
        }
    }

    #[test]
    fn selection_covers_all_widths_and_demands() {
        let (net, demand, _) = triple_route();
        let caps = net.capacities();
        let candidates = paths_selection(&net, &[demand], &caps, 2, 3, SwapMode::NFusion);
        // Every returned width is in 1..=3 and has at most h = 2 entries.
        for w in 1..=3u32 {
            let count = candidates.iter().filter(|c| c.width == w).count();
            assert!(count <= 2, "width {w} produced {count} candidates");
            assert!(count >= 1, "width {w} missing");
        }
        // Widths above capacity/2 yield nothing.
        let too_wide = paths_selection(&net, &[demand], &caps, 2, 10, SwapMode::NFusion);
        assert!(too_wide.iter().all(|c| c.width <= 5));
    }

    #[test]
    fn candidate_metrics_match_mode() {
        let (net, demand, _) = triple_route();
        let caps = net.capacities();
        let nf = paths_selection(&net, &[demand], &caps, 1, 1, SwapMode::NFusion);
        let cl = paths_selection(&net, &[demand], &caps, 1, 1, SwapMode::Classic);
        assert_eq!(nf[0].path, cl[0].path);
        let wp = WidthedPath::uniform(nf[0].path.clone(), 1);
        assert_eq!(nf[0].metric, SwapMode::NFusion.score(&net, &wp));
        assert_eq!(cl[0].metric, SwapMode::Classic.score(&net, &wp));
    }

    #[test]
    fn descent_matches_reference_on_random_networks() {
        use crate::network::NetworkParams;
        use fusion_topology::TopologyConfig;

        for seed in [3, 17, 40] {
            let topo = TopologyConfig {
                num_switches: 24,
                num_user_pairs: 5,
                avg_degree: 5.0,
                ..TopologyConfig::default()
            }
            .generate(seed);
            let net = QuantumNetwork::from_topology(&topo, &NetworkParams::default());
            let demands = Demand::from_topology(&topo);
            let caps = net.capacities();
            for mode in [SwapMode::NFusion, SwapMode::Classic] {
                let descent = paths_selection(&net, &demands, &caps, 3, 5, mode);
                let reference = paths_selection_reference(&net, &demands, &caps, 3, 5, mode);
                assert_eq!(descent, reference, "seed {seed}, mode {mode:?}");
            }
        }
    }

    #[test]
    fn descent_matches_reference_under_reduced_capacity() {
        // B1 passes a running capacity remainder; the descent must honour
        // the caller's vector, not the network's.
        let (net, demand, n) = triple_route();
        let mut caps = net.capacities();
        caps[n[2].index()] = 1; // route A's switch can no longer relay
        caps[n[3].index()] = 3; // route B limited to width 1
        let demands = [demand];
        for h in [1, 2, 4] {
            let descent = paths_selection(&net, &demands, &caps, h, 4, SwapMode::NFusion);
            let reference =
                paths_selection_reference(&net, &demands, &caps, h, 4, SwapMode::NFusion);
            assert_eq!(descent, reference, "h = {h}");
        }
    }

    #[test]
    fn parallel_selection_matches_serial_exactly() {
        use crate::network::NetworkParams;
        use fusion_topology::TopologyConfig;

        let topo = TopologyConfig {
            num_switches: 30,
            num_user_pairs: 7,
            avg_degree: 6.0,
            ..TopologyConfig::default()
        }
        .generate(17);
        let net = QuantumNetwork::from_topology(&topo, &NetworkParams::default());
        let demands = Demand::from_topology(&topo);
        let caps = net.capacities();
        let serial = paths_selection(&net, &demands, &caps, 3, 4, SwapMode::NFusion);
        for threads in [2, 3, 8, 32] {
            let parallel =
                paths_selection_parallel(&net, &demands, &caps, 3, 4, SwapMode::NFusion, threads);
            assert_eq!(serial.len(), parallel.len(), "threads={threads}");
            for (s, p) in serial.iter().zip(&parallel) {
                assert_eq!(s.demand, p.demand, "threads={threads}");
                assert_eq!(s.path, p.path, "threads={threads}");
                assert_eq!(s.width, p.width, "threads={threads}");
                assert_eq!(s.metric, p.metric, "threads={threads}");
            }
        }
    }

    #[test]
    fn engine_without_reuse_matches_batch_selection() {
        use crate::network::NetworkParams;
        use fusion_topology::TopologyConfig;

        let topo = TopologyConfig {
            num_switches: 24,
            num_user_pairs: 5,
            avg_degree: 5.0,
            ..TopologyConfig::default()
        }
        .generate(11);
        let net = QuantumNetwork::from_topology(&topo, &NetworkParams::default());
        let demands = Demand::from_topology(&topo);
        let caps = net.capacities();
        let mut engine = SelectionEngine::new();
        for demand in &demands {
            let selected = engine.select_demand(
                &net,
                demand,
                &caps,
                SelectionQuery {
                    h: 3,
                    max_width: 5,
                    mode: SwapMode::NFusion,
                },
                |_| WidthReuse::Miss,
            );
            assert!(selected.iter().all(|s| s.footprint.is_some()));
            assert!(selected.iter().all(|s| s.log.is_some() && s.served == 0));
            let flat: Vec<CandidatePath> =
                selected.into_iter().flat_map(|s| s.candidates).collect();
            let batch = paths_selection(
                &net,
                std::slice::from_ref(demand),
                &caps,
                3,
                5,
                SwapMode::NFusion,
            );
            assert_eq!(flat, batch, "engine must equal batch for {:?}", demand.id);
        }
    }

    #[test]
    fn engine_reuse_round_trips_and_skips_searches() {
        let (net, demand, n) = triple_route();
        let caps = net.capacities();
        let mut engine = SelectionEngine::new();
        let q = SelectionQuery {
            h: 2,
            max_width: 3,
            mode: SwapMode::NFusion,
        };
        let first = engine.select_demand(&net, &demand, &caps, q, |_| WidthReuse::Miss);
        // Certificates cover the endpoints and every path node of the
        // width — and stay strictly inside the raw read set.
        for sel in &first {
            let fp = sel.footprint.as_ref().unwrap();
            let holds = |v: NodeId| fp.iter().any(|e| e.node == v);
            assert!(holds(demand.source) && holds(demand.dest));
            for c in &sel.candidates {
                for &v in c.path.nodes() {
                    assert!(
                        holds(v),
                        "width {} certificate missing path node {v}",
                        sel.width
                    );
                }
            }
            assert!(
                fp.len() <= sel.raw_reads as usize,
                "width {}: certificate ({}) exceeds raw reads ({})",
                sel.width,
                fp.len(),
                sel.raw_reads
            );
        }
        // Full reuse: identical candidates, no footprints, and it works
        // even against a capacity vector the cached slices never saw
        // (validity is the caller's contract).
        let mut smaller = caps.clone();
        smaller[n[5].index()] = 0;
        let second = engine.select_demand(&net, &demand, &smaller, q, |w| {
            first
                .iter()
                .find(|s| s.width == w)
                .map_or(WidthReuse::Miss, |s| WidthReuse::Full(s.candidates.clone()))
        });
        assert!(second.iter().all(|s| s.footprint.is_none()));
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.width, b.width);
            assert_eq!(a.candidates, b.candidates);
        }
        // Partial reuse: only the declined width is recomputed.
        let third = engine.select_demand(&net, &demand, &caps, q, |w| {
            if w == 2 {
                WidthReuse::Miss
            } else {
                first
                    .iter()
                    .find(|s| s.width == w)
                    .map(|s| WidthReuse::Full(s.candidates.clone()))
                    .unwrap()
            }
        });
        for sel in &third {
            assert_eq!(
                sel.footprint.is_some(),
                sel.width == 2,
                "width {}",
                sel.width
            );
            let fresh = first.iter().find(|s| s.width == sel.width).unwrap();
            assert_eq!(sel.candidates, fresh.candidates);
        }
    }

    #[test]
    fn engine_repair_replays_prefix_byte_identically() {
        use crate::network::NetworkParams;
        use fusion_topology::TopologyConfig;

        let topo = TopologyConfig {
            num_switches: 24,
            num_user_pairs: 5,
            avg_degree: 5.0,
            ..TopologyConfig::default()
        }
        .generate(29);
        let net = QuantumNetwork::from_topology(&topo, &NetworkParams::default());
        let demands = Demand::from_topology(&topo);
        let caps = net.capacities();
        let q = SelectionQuery {
            h: 3,
            max_width: 4,
            mode: SwapMode::NFusion,
        };
        let mut engine = SelectionEngine::new();
        for demand in &demands {
            let fresh = engine.select_demand(&net, demand, &caps, q, |_| WidthReuse::Miss);
            // Replaying any intact prefix of a width's recorded log under
            // unchanged capacity must reproduce the slice byte for byte:
            // Yen's control state after k searches is a pure function of
            // the first k results.
            for sel in &fresh {
                let log = sel.log.clone().unwrap();
                for intact in [0, 1, log.len() as u32 / 2, log.len() as u32] {
                    let repaired = engine.select_demand(&net, demand, &caps, q, |w| {
                        if w == sel.width {
                            WidthReuse::Repair(RepairSeed {
                                log: log.clone(),
                                intact,
                            })
                        } else {
                            WidthReuse::Miss
                        }
                    });
                    let r = repaired.iter().find(|s| s.width == sel.width).unwrap();
                    assert_eq!(r.candidates, sel.candidates, "intact = {intact}");
                    assert_eq!(r.served, intact.min(log.len() as u32), "intact = {intact}");
                    assert_eq!(
                        r.log.as_ref().unwrap(),
                        &log,
                        "replayed + live log must match the original, intact = {intact}"
                    );
                }
            }
        }
    }

    #[test]
    fn spt_engine_matches_batch_across_capacity_deltas() {
        use crate::network::NetworkParams;
        use fusion_topology::TopologyConfig;

        for seed in [7, 21] {
            let topo = TopologyConfig {
                num_switches: 24,
                num_user_pairs: 5,
                avg_degree: 5.0,
                ..TopologyConfig::default()
            }
            .generate(seed);
            let net = QuantumNetwork::from_topology(&topo, &NetworkParams::default());
            let demands = Demand::from_topology(&topo);
            let mut caps = net.capacities();
            let q = SelectionQuery {
                h: 3,
                max_width: 4,
                mode: SwapMode::NFusion,
            };
            let mut engine = SelectionEngine::new();
            engine.enable_spt(&Registry::disabled());
            // Interleave capacity deltas (reported to the SPT validity
            // clock) with full-demand sweeps; every slice must equal the
            // batch engine under the same capacities, so parked trees are
            // exercised fresh, resumed, and invalidated.
            for step in 0..6 {
                if step > 0 {
                    let v = NodeId::new((step * 5 + 2) % net.node_count());
                    let old = caps[v.index()];
                    let new = if step % 2 == 0 {
                        old.saturating_sub(3)
                    } else {
                        old + 2
                    };
                    caps[v.index()] = new;
                    engine.note_node_delta(&net, v, old, new);
                }
                for demand in &demands {
                    let selected =
                        engine.select_demand(&net, demand, &caps, q, |_| WidthReuse::Miss);
                    let flat: Vec<CandidatePath> =
                        selected.into_iter().flat_map(|s| s.candidates).collect();
                    let batch = paths_selection(
                        &net,
                        std::slice::from_ref(demand),
                        &caps,
                        3,
                        4,
                        SwapMode::NFusion,
                    );
                    assert_eq!(flat, batch, "seed {seed}, step {step}, {:?}", demand.id);
                }
            }
        }
    }

    #[test]
    fn no_candidates_for_disconnected_demand() {
        let mut b = QuantumNetwork::builder();
        let s = b.user(0.0, 0.0);
        let d = b.user(1.0, 0.0);
        let _sw = b.switch(0.5, 0.0, 10);
        let net = b.build();
        let demand = Demand::new(DemandId::new(0), s, d);
        let caps = net.capacities();
        assert!(paths_selection(&net, &[demand], &caps, 3, 2, SwapMode::NFusion).is_empty());
    }
}
