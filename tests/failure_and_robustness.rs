//! Robustness: failure injection degrades rates monotonically and the
//! stack stays well-behaved on degenerate inputs.

use ghz_entanglement_routing::core::algorithms::alg_n_fusion;
use ghz_entanglement_routing::core::{Demand, DemandId, NetworkParams, QuantumNetwork};
use ghz_entanglement_routing::sim::evaluate::estimate_plan;
use ghz_entanglement_routing::sim::failure::FailureModel;
use ghz_entanglement_routing::topology::TopologyConfig;

fn world(seed: u64) -> (QuantumNetwork, Vec<Demand>) {
    let topo = TopologyConfig {
        num_switches: 30,
        num_user_pairs: 6,
        avg_degree: 6.0,
        ..TopologyConfig::default()
    }
    .generate(seed);
    let net = QuantumNetwork::from_topology(&topo, &NetworkParams::default());
    let demands = Demand::from_topology(&topo);
    (net, demands)
}

#[test]
fn outages_degrade_rates_monotonically() {
    let (net, demands) = world(1);
    let plan = alg_n_fusion(&net, &demands);
    let mut last = f64::INFINITY;
    for outage in [0.0, 0.1, 0.3, 0.5] {
        let degraded = FailureModel {
            switch_outage: outage,
            link_decay: 0.0,
        }
        .degrade(&net);
        let rate = plan.total_rate(&degraded);
        assert!(
            rate <= last + 1e-9,
            "outage {outage}: rate rose ({last} -> {rate})"
        );
        last = rate;
    }
}

#[test]
fn link_decay_degrades_simulated_rates() {
    let (mut net, demands) = world(2);
    net.set_uniform_link_success(Some(0.6));
    let plan = alg_n_fusion(&net, &demands);
    let healthy = estimate_plan(&net, &plan, 3_000, 5).total_rate();
    let decayed_net = FailureModel {
        switch_outage: 0.0,
        link_decay: 0.3,
    }
    .degrade(&net);
    let decayed = estimate_plan(&decayed_net, &plan, 3_000, 5).total_rate();
    assert!(
        decayed < healthy,
        "30% fiber decay must reduce the simulated rate ({healthy} -> {decayed})"
    );
}

#[test]
fn replanning_after_failure_recovers_rate() {
    // A degraded network rerouted from scratch should do at least as well
    // as the stale plan evaluated on the degraded network.
    let (net, demands) = world(3);
    let stale = alg_n_fusion(&net, &demands);
    let degraded = FailureModel {
        switch_outage: 0.2,
        link_decay: 0.1,
    }
    .degrade(&net);
    let stale_rate = stale.total_rate(&degraded);
    let fresh_rate = alg_n_fusion(&degraded, &demands).total_rate(&degraded);
    assert!(
        fresh_rate >= stale_rate - 0.25,
        "replanning should not lose to the stale plan: {fresh_rate} vs {stale_rate}"
    );
}

#[test]
fn disconnected_demand_is_served_zero_not_panic() {
    // A user pair with no path must simply get rate 0.
    let mut b = QuantumNetwork::builder();
    let s = b.user(0.0, 0.0);
    let island = b.switch(1.0, 0.0, 10);
    let d = b.user(100.0, 0.0);
    let far = b.switch(99.0, 0.0, 10);
    b.link(s, island).unwrap();
    b.link(d, far).unwrap();
    let net = b.build();
    let demands = [Demand::new(DemandId::new(0), s, d)];
    let plan = alg_n_fusion(&net, &demands);
    assert_eq!(plan.served_demands(), 0);
    assert_eq!(plan.total_rate(&net), 0.0);
    let est = estimate_plan(&net, &plan, 100, 1);
    assert_eq!(est.total_rate(), 0.0);
}

#[test]
fn duplicate_pairs_get_independent_states() {
    // Two states demanded between the same user pair must be resourced
    // independently (flow-like graphs of different states share nothing).
    let (net, demands) = world(4);
    let (s, d) = (demands[0].source, demands[0].dest);
    let twins = [
        Demand::new(DemandId::new(0), s, d),
        Demand::new(DemandId::new(1), s, d),
    ];
    let plan = alg_n_fusion(&net, &twins);
    // Per-switch spend across both states must stay within capacity.
    for node in net.graph().node_ids().filter(|&n| net.is_switch(n)) {
        let spent: u32 = plan.plans.iter().map(|p| p.flow.qubits_at(node)).sum();
        assert!(spent <= net.capacity(node));
    }
    // Both states should be served in a 30-switch network.
    assert_eq!(plan.served_demands(), 2);
}

#[test]
fn tiny_capacity_networks_still_route_what_fits() {
    let topo = TopologyConfig {
        num_switches: 30,
        num_user_pairs: 10,
        avg_degree: 6.0,
        ..TopologyConfig::default()
    }
    .generate(5);
    let params = NetworkParams {
        switch_capacity: 2,
        ..NetworkParams::default()
    };
    let net = QuantumNetwork::from_topology(&topo, &params);
    let demands = Demand::from_topology(&topo);
    let plan = alg_n_fusion(&net, &demands);
    // Capacity 2 admits only width-1 paths; whatever routed must be valid.
    for dp in plan.plans.iter().filter(|p| !p.is_unserved()) {
        for (_, _, w) in dp.flow.edges() {
            assert_eq!(w, 1, "capacity-2 switches cannot support wider channels");
        }
    }
    for node in net.graph().node_ids().filter(|&n| net.is_switch(n)) {
        let spent: u32 = plan.plans.iter().map(|p| p.flow.qubits_at(node)).sum();
        assert!(spent <= 2);
    }
}
